package stpq

// ingest.go is the public live write path: DB.Apply appends a mutation
// batch to a write-ahead log, applies it to an in-memory delta, and
// publishes a two-source overlay engine (base + delta) whose answers are
// byte-identical to a from-scratch rebuild; DB.Flush merges the delta into
// a new base generation; DB.Checkpoint makes the merged state durable and
// trims the log; AttachWAL replays the log after a crash. The heavy
// lifting lives in internal/ingest; see DESIGN.md §11.

import (
	"encoding/json"
	"errors"
	"fmt"

	"stpq/internal/core"
	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/ingest"
	"stpq/internal/kwset"
	"stpq/internal/obs"
)

// MutationOp identifies the kind of one mutation. The string values are
// the WAL wire format — stable across versions.
type MutationOp string

const (
	// OpUpsertObject inserts a data object or overwrites the one with the
	// same id.
	OpUpsertObject MutationOp = "upsert_object"
	// OpDeleteObject deletes the data object with Mutation.ID.
	OpDeleteObject MutationOp = "delete_object"
	// OpUpsertFeature inserts a feature into set Mutation.Set or
	// overwrites the one with the same id.
	OpUpsertFeature MutationOp = "upsert_feature"
	// OpDeleteFeature deletes the feature with Mutation.ID from set
	// Mutation.Set.
	OpDeleteFeature MutationOp = "delete_feature"
)

// Mutation is one element of an Apply batch.
type Mutation struct {
	Op MutationOp `json:"op"`
	// Set names the target feature set (feature ops only).
	Set string `json:"set,omitempty"`
	// Object carries the object payload of OpUpsertObject.
	Object *Object `json:"object,omitempty"`
	// Feature carries the feature payload of OpUpsertFeature.
	Feature *Feature `json:"feature,omitempty"`
	// ID is the delete target of OpDeleteObject / OpDeleteFeature.
	ID int64 `json:"id,omitempty"`
}

// DefaultAutoFlushOps is the delta size at which Apply merges into a new
// base generation when Config.AutoFlushOps is 0.
const DefaultAutoFlushOps = 4096

// Ingest error sentinels.
var (
	// ErrNoWAL is returned by Apply when no write-ahead log is attached
	// (set Config.WALDir or call AttachWAL after Build/Open).
	ErrNoWAL = errors.New("stpq: no WAL attached")
	// ErrWALAttached is returned by AttachWAL when a log is already
	// attached.
	ErrWALAttached = errors.New("stpq: WAL already attached")
	// ErrIngestUnsupported is returned for DB configurations without a
	// write path: sharded engines and signature-mode indexes.
	ErrIngestUnsupported = errors.New("stpq: live ingest requires an unsharded, exact-keyword DB")
	// ErrInvalidMutation wraps every mutation-validation error.
	ErrInvalidMutation = errors.New("stpq: invalid mutation")
)

// Apply appends the batch to the WAL (returning only after it is durable
// per the group-commit setting), applies it to the in-memory delta, and
// atomically publishes a new engine generation serving base + delta.
// Batches are applied atomically with respect to queries: a snapshot sees
// either none or all of a batch. When the delta reaches the auto-flush
// threshold, or a mutation introduces a keyword outside the indexed
// vocabulary, Apply additionally merges delta into base (see Flush).
func (db *DB) Apply(muts []Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.RLock()
	wal := db.wal
	err := db.validateMutationsLocked(muts)
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	if wal == nil {
		return ErrNoWAL
	}
	payload, err := json.Marshal(muts)
	if err != nil {
		return fmt.Errorf("stpq: encoding mutations: %w", err)
	}
	// Durability first: the record is on disk before the state changes, so
	// a crash at any later point replays it.
	seq, err := wal.Append(payload)
	if err != nil {
		return fmt.Errorf("stpq: WAL append: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.applyBatchLocked(muts, true); err != nil {
		return err
	}
	db.walSeq = seq
	db.ingestApplied.Add(int64(len(muts)))
	return nil
}

// Flush merges the pending delta into the raw data and rebuilds the base
// indexes, publishing a new generation. A no-op when the delta is empty.
// Flush does not trim the WAL — only Checkpoint moves the durable
// watermark.
func (db *DB) Flush() error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.built {
		return fmt.Errorf("%w: Flush before Build", ErrNotBuilt)
	}
	if db.delta == nil || db.delta.Empty() {
		return nil
	}
	return db.mergeLocked(nil)
}

// PendingOps returns the number of mutations applied since the last merge
// — the current delta size.
func (db *DB) PendingOps() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.delta == nil {
		return 0
	}
	return db.delta.Ops()
}

// WALSeq returns the sequence number of the last applied WAL record (0
// before any append).
func (db *DB) WALSeq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walSeq
}

// Checkpoint flushes the delta, saves the merged DB to dir (recording the
// WAL position in the manifest), and drops the log segments the snapshot
// makes redundant. After a crash, Open(dir) + the manifest's WALDir replay
// only the records after the checkpoint.
func (db *DB) Checkpoint(dir string) error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	if !db.built {
		db.mu.Unlock()
		return fmt.Errorf("%w: Checkpoint before Build", ErrNotBuilt)
	}
	wal := db.wal
	if wal == nil {
		db.mu.Unlock()
		return ErrNoWAL
	}
	if db.delta != nil && !db.delta.Empty() {
		if err := db.mergeLocked(nil); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	db.appliedSeq = db.walSeq
	seq := db.walSeq
	db.mu.Unlock()
	if err := db.Save(dir); err != nil {
		return err
	}
	return wal.DropThrough(seq)
}

// AttachWAL opens (or creates) the write-ahead log in dir and replays
// every record after the DB's durable watermark — the manifest position
// for opened DBs, the beginning of the log otherwise. It returns the
// number of replayed mutations. Build and Open attach automatically when
// Config.WALDir is set; AttachWAL serves DBs built programmatically.
func (db *DB) AttachWAL(dir string) (int, error) {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.attachWALLocked(dir)
}

// attachWALLocked implements AttachWAL; callers hold both locks.
func (db *DB) attachWALLocked(dir string) (int, error) {
	if !db.built {
		return 0, fmt.Errorf("%w: AttachWAL before Build", ErrNotBuilt)
	}
	if db.wal != nil {
		return 0, ErrWALAttached
	}
	if err := db.ingestableLocked(); err != nil {
		return 0, err
	}
	if len(db.objects) == 0 {
		// Opened DBs do not retain the raw slices; rebuild them from the
		// indexes so merges (which re-bulk-load from raw) work.
		if err := db.materializeRawLocked(); err != nil {
			return 0, err
		}
		db.objByID = make(map[int64]struct{}, len(db.objects))
		for _, o := range db.objects {
			db.objByID[o.ID] = struct{}{}
		}
	}
	db.ingestApplied = db.metrics.Counter("stpq_ingest_applied_total")
	db.ingestReplayed = db.metrics.Counter("stpq_ingest_replayed_total")
	db.ingestMerges = db.metrics.Counter("stpq_ingest_merges_total")
	fsync := db.metrics.Histogram("stpq_ingest_wal_fsync_seconds", obs.LatencyBuckets)
	appends := db.metrics.Counter("stpq_wal_appends_total")
	walBytes := db.metrics.Counter("stpq_wal_bytes_total")
	w, err := ingest.OpenWAL(dir, ingest.WALOptions{
		SegmentBytes:   db.cfg.WALSegmentBytes,
		GroupCommit:    db.cfg.WALGroupCommit,
		RetainSegments: db.cfg.WALRetainSegments,
		FsyncObserver:  fsync.Observe,
		AppendObserver: func(n int) {
			appends.Inc()
			walBytes.Add(int64(n))
		},
	})
	if err != nil {
		return 0, fmt.Errorf("stpq: opening WAL: %w", err)
	}
	replayed := 0
	err = w.Replay(db.appliedSeq+1, func(seq uint64, payload []byte) error {
		var muts []Mutation
		if err := json.Unmarshal(payload, &muts); err != nil {
			return fmt.Errorf("stpq: WAL record %d: %w", seq, err)
		}
		if err := db.validateMutationsLocked(muts); err != nil {
			return fmt.Errorf("stpq: WAL record %d: %w", seq, err)
		}
		if err := db.applyBatchLocked(muts, false); err != nil {
			return fmt.Errorf("stpq: WAL record %d: %w", seq, err)
		}
		db.walSeq = seq
		replayed += len(muts)
		return nil
	})
	if err != nil {
		w.Close()
		return 0, err
	}
	if db.delta != nil && !db.delta.Empty() {
		if err := db.publishOverlayLocked(); err != nil {
			w.Close()
			return 0, err
		}
	}
	if next := w.NextSeq(); db.walSeq < next-1 {
		db.walSeq = next - 1
	}
	db.wal = w
	db.ingestReplayed.Add(int64(replayed))
	return replayed, nil
}

// CloseWAL flushes pending group commits and closes the log. The DB keeps
// answering queries; Apply fails with ErrNoWAL afterwards.
func (db *DB) CloseWAL() error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	err := db.wal.Close()
	db.wal = nil
	return err
}

// ingestableLocked rejects configurations without a write path.
func (db *DB) ingestableLocked() error {
	if db.base == nil {
		return fmt.Errorf("%w (ShardCount %d)", ErrIngestUnsupported, db.cfg.ShardCount)
	}
	if db.cfg.SignatureBits > 0 {
		return fmt.Errorf("%w (SignatureBits %d)", ErrIngestUnsupported, db.cfg.SignatureBits)
	}
	return nil
}

// validateMutationsLocked checks a batch against the current schema.
func (db *DB) validateMutationsLocked(muts []Mutation) error {
	if !db.built {
		return fmt.Errorf("%w: Apply before Build", ErrNotBuilt)
	}
	if err := db.ingestableLocked(); err != nil {
		return err
	}
	for i, m := range muts {
		switch m.Op {
		case OpUpsertObject:
			if m.Object == nil {
				return fmt.Errorf("%w: mutation %d: upsert_object without object", ErrInvalidMutation, i)
			}
		case OpDeleteObject:
			// ID-only; nothing to check.
		case OpUpsertFeature:
			if m.Feature == nil {
				return fmt.Errorf("%w: mutation %d: upsert_feature without feature", ErrInvalidMutation, i)
			}
			if m.Feature.Score < 0 || m.Feature.Score > 1 {
				return fmt.Errorf("%w: mutation %d: feature score %v outside [0,1]", ErrInvalidMutation, i, m.Feature.Score)
			}
			if db.setPosLocked(m.Set) < 0 {
				return fmt.Errorf("%w: mutation %d: unknown feature set %q", ErrInvalidMutation, i, m.Set)
			}
		case OpDeleteFeature:
			if db.setPosLocked(m.Set) < 0 {
				return fmt.Errorf("%w: mutation %d: unknown feature set %q", ErrInvalidMutation, i, m.Set)
			}
		default:
			return fmt.Errorf("%w: mutation %d: unknown op %q", ErrInvalidMutation, i, m.Op)
		}
	}
	return nil
}

// setPosLocked returns the position of a feature set name, or -1.
func (db *DB) setPosLocked(name string) int {
	for i, n := range db.setNames {
		if n == name {
			return i
		}
	}
	return -1
}

// applyBatchLocked applies one validated batch to the in-memory state:
// the fast path routes it into the delta (feature inserts exercising the
// R-tree insertion path and the Section 4.2 node-update rule) and, when
// publish is set, swaps in a fresh overlay generation. Batches that grow
// the vocabulary, and deltas that reach the auto-flush threshold, take the
// merge path instead. Replay passes publish=false and publishes once at
// the end.
func (db *DB) applyBatchLocked(muts []Mutation, publish bool) error {
	if db.batchGrowsVocabLocked(muts) {
		return db.mergeLocked(muts)
	}
	if err := db.ensureDeltaLocked(); err != nil {
		return err
	}
	for _, m := range muts {
		switch m.Op {
		case OpUpsertObject:
			o := *m.Object
			db.delta.UpsertObject(index.Object{ID: o.ID, Location: geo.Point{X: o.X, Y: o.Y}})
		case OpDeleteObject:
			db.delta.DeleteObject(m.ID)
		case OpUpsertFeature:
			f := *m.Feature
			err := db.delta.UpsertFeature(db.setPosLocked(m.Set), index.Feature{
				ID:       f.ID,
				Location: geo.Point{X: f.X, Y: f.Y},
				Score:    f.Score,
				Keywords: db.vocab.LookupSet(f.Keywords...),
			})
			if err != nil {
				return err
			}
		case OpDeleteFeature:
			if err := db.delta.DeleteFeature(db.setPosLocked(m.Set), m.ID); err != nil {
				return err
			}
		}
	}
	if t := db.autoFlushThreshold(); t > 0 && db.delta.Ops() >= t {
		return db.mergeLocked(nil)
	}
	if publish {
		return db.publishOverlayLocked()
	}
	return nil
}

// autoFlushThreshold resolves Config.AutoFlushOps (0 = default, negative =
// disabled).
func (db *DB) autoFlushThreshold() int {
	if db.cfg.AutoFlushOps < 0 {
		return 0
	}
	if db.cfg.AutoFlushOps == 0 {
		return DefaultAutoFlushOps
	}
	return db.cfg.AutoFlushOps
}

// batchGrowsVocabLocked reports whether any upserted feature carries a
// keyword outside the indexed vocabulary. The delta indexes are built at
// the base vocabulary width, so such a batch must merge instead (the
// rebuild re-interns and widens every index).
func (db *DB) batchGrowsVocabLocked(muts []Mutation) bool {
	for _, m := range muts {
		if m.Op != OpUpsertFeature || m.Feature == nil {
			continue
		}
		for _, w := range m.Feature.Keywords {
			if kwset.Normalize(w) == "" {
				continue // never indexable; Build drops it too
			}
			if db.vocab.Lookup(w) < 0 {
				return true
			}
		}
	}
	return false
}

// ensureDeltaLocked creates the delta layer on first use after a build.
func (db *DB) ensureDeltaLocked() error {
	if db.delta != nil {
		return nil
	}
	d, err := ingest.NewDelta(index.Options{
		Kind:        index.Kind(db.cfg.IndexKind),
		VocabWidth:  db.vocab.Size(),
		PageSize:    db.cfg.PageSize,
		BufferPages: db.cfg.BufferPages,
		PoolStripes: db.cfg.PoolStripes,
	}, len(db.setNames))
	if err != nil {
		return err
	}
	db.delta = d
	return nil
}

// publishOverlayLocked builds and swaps in a new overlay generation: the
// base object tree filtered by tombstones, per-set feature groups made of
// tombstone-filtered base parts plus an immutable clone of the delta part,
// and the delta-resident objects merged at query time. The generation bump
// invalidates serve-layer result caches exactly like a Rebuild.
func (db *DB) publishOverlayLocked() error {
	d := db.delta
	objView := db.base.Objects().WithExclude(d.DeadObjects)
	groups := make([]*index.FeatureGroup, len(db.setNames))
	for i := range db.setNames {
		ds := d.Sets[i]
		baseParts := db.base.FeatureGroups()[i].Parts()
		parts := make([]*index.FeatureIndex, 0, len(baseParts)+1)
		for _, p := range baseParts {
			parts = append(parts, p.WithExclude(ds.Dead))
		}
		if len(ds.Feats) > 0 {
			clone, err := d.CloneIndex(i)
			if err != nil {
				return fmt.Errorf("stpq: cloning delta set %d: %w", i, err)
			}
			parts = append(parts, clone)
		}
		g, err := index.NewFeatureGroup(parts...)
		if err != nil {
			return err
		}
		groups[i] = g
	}
	eng, err := core.NewEngineWithGroups(objView, groups, db.cfg.coreOptions(db.metrics, db.tel))
	if err != nil {
		return err
	}
	live := len(db.objByID) + len(d.Objects)
	for id := range d.DeadObjects {
		if _, ok := db.objByID[id]; ok {
			live--
		}
	}
	overlay := ingest.NewOverlay(eng, d.Objects, live)
	db.engine = overlay
	db.metrics.Gauge("stpq_ingest_delta_objects").Set(float64(overlay.DeltaObjects()))
	db.metrics.Gauge("stpq_ingest_delta_ops").Set(float64(d.Ops()))
	db.gen++
	db.inverted = nil
	return nil
}

// mergeLocked folds the delta (plus an optional trailing batch that could
// not go through the delta) into the raw data and rebuilds the base —
// the merge half of the merge/swap lifecycle. buildLocked publishes the
// new generation atomically; in-flight queries drain on the old engine.
func (db *DB) mergeLocked(extra []Mutation) error {
	deadObj := make(map[int64]struct{})
	upsObj := make(map[int64]Object)
	deadFeat := make([]map[int64]struct{}, len(db.setNames))
	upsFeat := make([]map[int64]Feature, len(db.setNames))
	for i := range db.setNames {
		deadFeat[i] = make(map[int64]struct{})
		upsFeat[i] = make(map[int64]Feature)
	}
	if d := db.delta; d != nil {
		for id := range d.DeadObjects {
			deadObj[id] = struct{}{}
		}
		for id, o := range d.Objects {
			upsObj[id] = Object{ID: id, X: o.Location.X, Y: o.Location.Y}
		}
		for i, ds := range d.Sets {
			for id := range ds.Dead {
				deadFeat[i][id] = struct{}{}
			}
			for id, f := range ds.Feats {
				upsFeat[i][id] = Feature{
					ID: id, X: f.Location.X, Y: f.Location.Y,
					Score:    f.Score,
					Keywords: db.vocab.Decode(f.Keywords),
				}
			}
		}
	}
	for _, m := range extra {
		switch m.Op {
		case OpUpsertObject:
			deadObj[m.Object.ID] = struct{}{}
			upsObj[m.Object.ID] = *m.Object
		case OpDeleteObject:
			deadObj[m.ID] = struct{}{}
			delete(upsObj, m.ID)
		case OpUpsertFeature:
			i := db.setPosLocked(m.Set)
			deadFeat[i][m.Feature.ID] = struct{}{}
			upsFeat[i][m.Feature.ID] = *m.Feature
		case OpDeleteFeature:
			i := db.setPosLocked(m.Set)
			deadFeat[i][m.ID] = struct{}{}
			delete(upsFeat[i], m.ID)
		}
	}
	db.objects = foldSlice(db.objects, deadObj, upsObj, func(o Object) int64 { return o.ID })
	for i, name := range db.setNames {
		db.sets[name] = foldSlice(db.sets[name], deadFeat[i], upsFeat[i], func(f Feature) int64 { return f.ID })
	}
	// Intern into a clone so snapshots of the previous generation keep a
	// stable vocabulary (same contract as Rebuild).
	db.vocab = db.vocab.Clone()
	db.delta = nil
	if err := db.buildLocked(); err != nil {
		return err
	}
	if db.ingestMerges != nil {
		db.ingestMerges.Inc()
	}
	db.metrics.Gauge("stpq_ingest_delta_objects").Set(0)
	db.metrics.Gauge("stpq_ingest_delta_ops").Set(0)
	return nil
}

// foldSlice rebuilds a raw slice under tombstones and upserts: survivors
// keep their original order, overwritten ids are replaced in place, and
// new ids are appended in ascending id order — a deterministic fold, so
// replaying the same WAL reproduces the same bulk-load input.
func foldSlice[T any](in []T, dead map[int64]struct{}, ups map[int64]T, idOf func(T) int64) []T {
	out := make([]T, 0, len(in)+len(ups))
	pending := make(map[int64]T, len(ups))
	for id, v := range ups {
		pending[id] = v
	}
	for _, v := range in {
		id := idOf(v)
		if up, ok := pending[id]; ok {
			out = append(out, up)
			delete(pending, id)
			continue
		}
		if _, ok := dead[id]; ok {
			continue
		}
		out = append(out, v)
	}
	ids := make([]int64, 0, len(pending))
	for id := range pending {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	for _, id := range ids {
		out = append(out, pending[id])
	}
	return out
}

// materializeRawLocked reconstructs db.objects and db.sets from the base
// indexes — the bridge that lets DBs loaded with Open (which drop the raw
// slices) merge and rebuild.
func (db *DB) materializeRawLocked() error {
	objEntries, err := db.base.Objects().Tree().All()
	if err != nil {
		return fmt.Errorf("stpq: materializing objects: %w", err)
	}
	db.objects = make([]Object, len(objEntries))
	for i, e := range objEntries {
		db.objects[i] = Object{ID: e.ItemID, X: e.Point().X, Y: e.Point().Y}
	}
	for i, name := range db.setNames {
		entries, err := db.base.FeatureGroups()[i].AllExact()
		if err != nil {
			return fmt.Errorf("stpq: materializing feature set %q: %w", name, err)
		}
		feats := make([]Feature, len(entries))
		for j, e := range entries {
			feats[j] = Feature{
				ID: e.ItemID, X: e.Point().X, Y: e.Point().Y,
				Score:    e.Score,
				Keywords: db.vocab.Decode(e.Keywords),
			}
		}
		db.sets[name] = feats
	}
	return nil
}

// sortInt64s sorts ascending (sort.Slice shim to keep the generic fold
// free of reflection in the hot path).
func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
