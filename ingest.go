package stpq

// ingest.go is the public live write path: DB.Apply appends a mutation
// batch to a write-ahead log, applies it to an in-memory delta, and
// publishes a two-source overlay engine (base + delta) whose answers are
// byte-identical to a from-scratch rebuild; DB.Flush merges the delta into
// a new base generation; DB.Checkpoint makes the merged state durable and
// trims the log; AttachWAL replays the log after a crash. The heavy
// lifting lives in internal/ingest; see DESIGN.md §11.

import (
	"encoding/json"
	"errors"
	"fmt"

	"stpq/internal/core"
	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/ingest"
	"stpq/internal/kwset"
	"stpq/internal/obs"
)

// MutationOp identifies the kind of one mutation. The string values are
// the WAL wire format — stable across versions.
type MutationOp string

const (
	// OpUpsertObject inserts a data object or overwrites the one with the
	// same id.
	OpUpsertObject MutationOp = "upsert_object"
	// OpDeleteObject deletes the data object with Mutation.ID.
	OpDeleteObject MutationOp = "delete_object"
	// OpUpsertFeature inserts a feature into set Mutation.Set or
	// overwrites the one with the same id.
	OpUpsertFeature MutationOp = "upsert_feature"
	// OpDeleteFeature deletes the feature with Mutation.ID from set
	// Mutation.Set.
	OpDeleteFeature MutationOp = "delete_feature"
)

// Mutation is one element of an Apply batch.
type Mutation struct {
	Op MutationOp `json:"op"`
	// Set names the target feature set (feature ops only).
	Set string `json:"set,omitempty"`
	// Object carries the object payload of OpUpsertObject.
	Object *Object `json:"object,omitempty"`
	// Feature carries the feature payload of OpUpsertFeature.
	Feature *Feature `json:"feature,omitempty"`
	// ID is the delete target of OpDeleteObject / OpDeleteFeature.
	ID int64 `json:"id,omitempty"`
}

// DefaultAutoFlushOps is the delta size at which Apply merges into a new
// base generation when Config.AutoFlushOps is 0.
const DefaultAutoFlushOps = 4096

// Ingest error sentinels.
var (
	// ErrNoWAL is returned by Apply when no write-ahead log is attached
	// (set Config.WALDir or call AttachWAL after Build/Open).
	ErrNoWAL = errors.New("stpq: no WAL attached")
	// ErrWALAttached is returned by AttachWAL when a log is already
	// attached.
	ErrWALAttached = errors.New("stpq: WAL already attached")
	// ErrIngestUnsupported is returned for DB configurations without a
	// write path: sharded engines and signature-mode indexes.
	ErrIngestUnsupported = errors.New("stpq: live ingest requires an unsharded, exact-keyword DB")
	// ErrInvalidMutation wraps every mutation-validation error.
	ErrInvalidMutation = errors.New("stpq: invalid mutation")
)

// Apply appends the batch to the WAL (returning only after it is durable
// per the group-commit setting), applies it to the in-memory delta, and
// atomically publishes a new engine generation serving base + delta.
// Batches are applied atomically with respect to queries: a snapshot sees
// either none or all of a batch. When the delta reaches the auto-flush
// threshold, or a mutation introduces a keyword outside the indexed
// vocabulary, Apply additionally merges delta into base (see Flush).
func (db *DB) Apply(muts []Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.RLock()
	wal := db.wal
	err := db.validateMutationsLocked(muts)
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	if wal == nil {
		return ErrNoWAL
	}
	payload, err := json.Marshal(muts)
	if err != nil {
		return fmt.Errorf("stpq: encoding mutations: %w", err)
	}
	// Durability first: the record is on disk before the state changes, so
	// a crash at any later point replays it.
	seq, err := wal.Append(payload)
	if err != nil {
		return fmt.Errorf("stpq: WAL append: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.applyBatchLocked(muts, true); err != nil {
		return err
	}
	db.walSeq = seq
	db.ingestApplied.Add(int64(len(muts)))
	return nil
}

// Flush merges every pending generation — sealed runs and the active
// delta — into the base indexes, publishing a new generation. Under the
// default MergeAuto policy the merge is incremental: the net mutations
// are batch-applied into copy-on-write clones of the base trees, so only
// touched subtrees are rewritten. A no-op when nothing is pending. Flush
// does not trim the WAL — only Checkpoint moves the durable watermark.
func (db *DB) Flush() error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.built {
		return fmt.Errorf("%w: Flush before Build", ErrNotBuilt)
	}
	if !db.pendingLocked() {
		return nil
	}
	return db.mergeLocked(nil, false)
}

// pendingLocked reports whether any unmerged mutations exist (sealed runs
// or a non-empty delta).
func (db *DB) pendingLocked() bool {
	return len(db.runs) > 0 || (db.delta != nil && !db.delta.Empty())
}

// PendingOps returns the number of mutations applied since the last merge
// — the active delta plus every sealed, uncompacted run.
func (db *DB) PendingOps() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, r := range db.runs {
		n += r.Ops
	}
	if db.delta != nil {
		n += db.delta.Ops()
	}
	return n
}

// Runs returns the number of sealed runs awaiting background compaction.
func (db *DB) Runs() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.runs)
}

// WALSeq returns the sequence number of the last applied WAL record (0
// before any append).
func (db *DB) WALSeq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walSeq
}

// Checkpoint merges every pending generation, saves the merged DB to dir
// (recording the WAL position in the manifest), and drops the log
// segments the snapshot makes redundant. After a crash, Open(dir) + the
// manifest's WALDir replay only the records after the checkpoint.
//
// The disk phase runs against a pinned generation with no DB locks held:
// the merged engine's pages are immutable by construction (later partial
// merges write only copy-on-write overlays), so Apply keeps accepting
// writes while the snapshot streams out. The save itself is atomic — page
// dumps land under generation-stamped names and the manifest is renamed
// into place last — so a crash mid-checkpoint leaves the previous
// checkpoint fully intact.
func (db *DB) Checkpoint(dir string) error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.ingestMu.Lock()
	db.mu.Lock()
	if !db.built {
		db.mu.Unlock()
		db.ingestMu.Unlock()
		return fmt.Errorf("%w: Checkpoint before Build", ErrNotBuilt)
	}
	wal := db.wal
	if wal == nil {
		db.mu.Unlock()
		db.ingestMu.Unlock()
		return ErrNoWAL
	}
	if db.pendingLocked() {
		if err := db.mergeLocked(nil, false); err != nil {
			db.mu.Unlock()
			db.ingestMu.Unlock()
			return err
		}
	}
	prevApplied := db.appliedSeq
	db.appliedSeq = db.walSeq
	seq := db.walSeq
	pin, err := db.pinCheckpointLocked(seq)
	db.mu.Unlock()
	db.ingestMu.Unlock()
	if err == nil {
		err = pin.save(dir)
	}
	if err != nil {
		db.mu.Lock()
		if db.appliedSeq == seq {
			db.appliedSeq = prevApplied
		}
		db.mu.Unlock()
		return err
	}
	if err := db.SaveShapes(dir); err != nil {
		return err
	}
	return wal.DropThrough(seq)
}

// AttachWAL opens (or creates) the write-ahead log in dir and replays
// every record after the DB's durable watermark — the manifest position
// for opened DBs, the beginning of the log otherwise. It returns the
// number of replayed mutations. Build and Open attach automatically when
// Config.WALDir is set; AttachWAL serves DBs built programmatically.
func (db *DB) AttachWAL(dir string) (int, error) {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.attachWALLocked(dir)
}

// attachWALLocked implements AttachWAL; callers hold both locks.
func (db *DB) attachWALLocked(dir string) (int, error) {
	if !db.built {
		return 0, fmt.Errorf("%w: AttachWAL before Build", ErrNotBuilt)
	}
	if db.wal != nil {
		return 0, ErrWALAttached
	}
	if err := db.ingestableLocked(); err != nil {
		return 0, err
	}
	if len(db.objects) == 0 {
		// Opened DBs do not retain the raw slices; rebuild them from the
		// indexes so merges (which fold into raw) work.
		if err := db.materializeRawLocked(); err != nil {
			return 0, err
		}
		db.rebuildLocMapsLocked()
	}
	if db.baseHeights == nil {
		// Opened DBs skipped buildLocked; their reopened bulk-loaded trees
		// are the degradation baseline.
		db.recordBaseShapeLocked()
	}
	db.ingestApplied = db.metrics.Counter("stpq_ingest_applied_total")
	db.ingestReplayed = db.metrics.Counter("stpq_ingest_replayed_total")
	db.ingestMerges = db.metrics.Counter("stpq_ingest_merges_total")
	db.partialMerges = db.metrics.Counter("stpq_ingest_partial_merges_total")
	db.fullRebuilds = db.metrics.Counter("stpq_ingest_full_rebuilds_total")
	db.compactions = db.metrics.Counter("stpq_ingest_compactions_total")
	db.compactsLost = db.metrics.Counter("stpq_ingest_compactions_abandoned_total")
	db.writeStalls = db.metrics.Counter("stpq_ingest_write_stalls_total")
	db.mergeSeconds = db.metrics.Histogram("stpq_ingest_merge_seconds", obs.LatencyBuckets)
	fsync := db.metrics.Histogram("stpq_ingest_wal_fsync_seconds", obs.LatencyBuckets)
	appends := db.metrics.Counter("stpq_wal_appends_total")
	walBytes := db.metrics.Counter("stpq_wal_bytes_total")
	w, err := ingest.OpenWAL(dir, ingest.WALOptions{
		SegmentBytes:   db.cfg.WALSegmentBytes,
		GroupCommit:    db.cfg.WALGroupCommit,
		RetainSegments: db.cfg.WALRetainSegments,
		FsyncObserver:  fsync.Observe,
		AppendObserver: func(n int) {
			appends.Inc()
			walBytes.Add(int64(n))
		},
	})
	if err != nil {
		return 0, fmt.Errorf("stpq: opening WAL: %w", err)
	}
	replayed := 0
	err = w.Replay(db.appliedSeq+1, func(seq uint64, payload []byte) error {
		var muts []Mutation
		if err := json.Unmarshal(payload, &muts); err != nil {
			return fmt.Errorf("stpq: WAL record %d: %w", seq, err)
		}
		if err := db.validateMutationsLocked(muts); err != nil {
			return fmt.Errorf("stpq: WAL record %d: %w", seq, err)
		}
		if err := db.applyBatchLocked(muts, false); err != nil {
			return fmt.Errorf("stpq: WAL record %d: %w", seq, err)
		}
		db.walSeq = seq
		replayed += len(muts)
		return nil
	})
	if err != nil {
		w.Close()
		return 0, err
	}
	if db.pendingLocked() {
		if err := db.publishOverlayLocked(); err != nil {
			w.Close()
			return 0, err
		}
	}
	if next := w.NextSeq(); db.walSeq < next-1 {
		db.walSeq = next - 1
	}
	db.wal = w
	db.ingestReplayed.Add(int64(replayed))
	if db.cfg.BackgroundCompaction && db.compactDone == nil {
		db.compactC = make(chan struct{}, 1)
		db.compactStop = make(chan struct{})
		db.compactDone = make(chan struct{})
		go db.compactorLoop(db.compactC, db.compactStop, db.compactDone)
		if len(db.runs) > 0 {
			db.nudgeCompactor()
		}
	}
	return replayed, nil
}

// CloseWAL stops the background compactor, flushes pending group commits
// and closes the log. The DB keeps answering queries; Apply fails with
// ErrNoWAL afterwards. Unmerged runs and delta stay queryable and remain
// recoverable from the log they were appended to.
func (db *DB) CloseWAL() error {
	db.ingestMu.Lock()
	db.mu.Lock()
	stop, done := db.compactStop, db.compactDone
	db.compactStop, db.compactDone, db.compactC = nil, nil, nil
	db.mu.Unlock()
	db.ingestMu.Unlock()
	if stop != nil {
		close(stop)
		<-done // the compactor may be mid-swap; wait it out
	}
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	err := db.wal.Close()
	db.wal = nil
	return err
}

// ingestableLocked rejects configurations without a write path.
func (db *DB) ingestableLocked() error {
	if db.base == nil {
		return fmt.Errorf("%w (ShardCount %d)", ErrIngestUnsupported, db.cfg.ShardCount)
	}
	if db.cfg.SignatureBits > 0 {
		return fmt.Errorf("%w (SignatureBits %d)", ErrIngestUnsupported, db.cfg.SignatureBits)
	}
	return nil
}

// validateMutationsLocked checks a batch against the current schema.
func (db *DB) validateMutationsLocked(muts []Mutation) error {
	if !db.built {
		return fmt.Errorf("%w: Apply before Build", ErrNotBuilt)
	}
	if err := db.ingestableLocked(); err != nil {
		return err
	}
	for i, m := range muts {
		switch m.Op {
		case OpUpsertObject:
			if m.Object == nil {
				return fmt.Errorf("%w: mutation %d: upsert_object without object", ErrInvalidMutation, i)
			}
		case OpDeleteObject:
			// ID-only; nothing to check.
		case OpUpsertFeature:
			if m.Feature == nil {
				return fmt.Errorf("%w: mutation %d: upsert_feature without feature", ErrInvalidMutation, i)
			}
			if m.Feature.Score < 0 || m.Feature.Score > 1 {
				return fmt.Errorf("%w: mutation %d: feature score %v outside [0,1]", ErrInvalidMutation, i, m.Feature.Score)
			}
			if db.setPosLocked(m.Set) < 0 {
				return fmt.Errorf("%w: mutation %d: unknown feature set %q", ErrInvalidMutation, i, m.Set)
			}
		case OpDeleteFeature:
			if db.setPosLocked(m.Set) < 0 {
				return fmt.Errorf("%w: mutation %d: unknown feature set %q", ErrInvalidMutation, i, m.Set)
			}
		default:
			return fmt.Errorf("%w: mutation %d: unknown op %q", ErrInvalidMutation, i, m.Op)
		}
	}
	return nil
}

// setPosLocked returns the position of a feature set name, or -1.
func (db *DB) setPosLocked(name string) int {
	for i, n := range db.setNames {
		if n == name {
			return i
		}
	}
	return -1
}

// applyBatchLocked applies one validated batch to the in-memory state:
// the fast path routes it into the delta (feature inserts exercising the
// R-tree insertion path and the Section 4.2 node-update rule) and, when
// publish is set, swaps in a fresh overlay generation. Batches that grow
// the vocabulary take the full-rebuild merge path (the delta indexes are
// built at the base vocabulary width). A delta reaching the auto-flush
// threshold merges synchronously — or, under BackgroundCompaction, is
// sealed into an immutable run for the compactor, keeping the write
// stall at O(feature sets). Replay passes publish=false and publishes
// once at the end.
func (db *DB) applyBatchLocked(muts []Mutation, publish bool) error {
	if db.batchGrowsVocabLocked(muts) {
		return db.mergeLocked(muts, true)
	}
	if err := db.ensureDeltaLocked(); err != nil {
		return err
	}
	for _, m := range muts {
		switch m.Op {
		case OpUpsertObject:
			o := *m.Object
			db.delta.UpsertObject(index.Object{ID: o.ID, Location: geo.Point{X: o.X, Y: o.Y}})
		case OpDeleteObject:
			db.delta.DeleteObject(m.ID)
		case OpUpsertFeature:
			f := *m.Feature
			err := db.delta.UpsertFeature(db.setPosLocked(m.Set), index.Feature{
				ID:       f.ID,
				Location: geo.Point{X: f.X, Y: f.Y},
				Score:    f.Score,
				Keywords: db.vocab.LookupSet(f.Keywords...),
			})
			if err != nil {
				return err
			}
		case OpDeleteFeature:
			if err := db.delta.DeleteFeature(db.setPosLocked(m.Set), m.ID); err != nil {
				return err
			}
		}
	}
	if t := db.autoFlushThreshold(); t > 0 && db.delta.Ops() >= t {
		if !db.backgroundOnLocked() {
			return db.mergeLocked(nil, false)
		}
		if len(db.runs) >= db.maxRuns() {
			// Backpressure: the compactor is behind; merge synchronously
			// rather than grow runs without bound. This is the write
			// stall the metric counts.
			if db.writeStalls != nil {
				db.writeStalls.Inc()
			}
			return db.mergeLocked(nil, false)
		}
		db.sealDeltaLocked()
	}
	if publish {
		return db.publishOverlayLocked()
	}
	return nil
}

// backgroundOnLocked reports whether the background compactor is running.
func (db *DB) backgroundOnLocked() bool {
	return db.cfg.BackgroundCompaction && db.compactDone != nil
}

// compactRunsWatermark resolves Config.CompactRuns.
func (db *DB) compactRunsWatermark() int {
	if db.cfg.CompactRuns > 0 {
		return db.cfg.CompactRuns
	}
	return 4
}

// maxRuns resolves Config.MaxRuns, the write-backpressure cap.
func (db *DB) maxRuns() int {
	if db.cfg.MaxRuns > 0 {
		return db.cfg.MaxRuns
	}
	return 4 * db.compactRunsWatermark()
}

// sealDeltaLocked converts the active delta into an immutable run and
// wakes the compactor. Sealing is O(feature sets): the run takes over the
// delta's maps and indexes.
func (db *DB) sealDeltaLocked() {
	db.runs = append(db.runs, db.delta.Seal(db.walSeq))
	db.delta = nil
	db.metrics.Gauge("stpq_ingest_runs").Set(float64(len(db.runs)))
	if len(db.runs) >= db.compactRunsWatermark() {
		db.nudgeCompactor()
	}
}

// nudgeCompactor wakes the compactor goroutine without blocking. Callers
// hold db.mu.
func (db *DB) nudgeCompactor() {
	if db.compactC == nil {
		return
	}
	select {
	case db.compactC <- struct{}{}:
	default:
	}
}

// autoFlushThreshold resolves Config.AutoFlushOps (0 = default, negative =
// disabled).
func (db *DB) autoFlushThreshold() int {
	if db.cfg.AutoFlushOps < 0 {
		return 0
	}
	if db.cfg.AutoFlushOps == 0 {
		return DefaultAutoFlushOps
	}
	return db.cfg.AutoFlushOps
}

// batchGrowsVocabLocked reports whether any upserted feature carries a
// keyword outside the indexed vocabulary. The delta indexes are built at
// the base vocabulary width, so such a batch must merge instead (the
// rebuild re-interns and widens every index).
func (db *DB) batchGrowsVocabLocked(muts []Mutation) bool {
	for _, m := range muts {
		if m.Op != OpUpsertFeature || m.Feature == nil {
			continue
		}
		for _, w := range m.Feature.Keywords {
			if kwset.Normalize(w) == "" {
				continue // never indexable; Build drops it too
			}
			if db.vocab.Lookup(w) < 0 {
				return true
			}
		}
	}
	return false
}

// ensureDeltaLocked creates the delta layer on first use after a build.
func (db *DB) ensureDeltaLocked() error {
	if db.delta != nil {
		return nil
	}
	d, err := ingest.NewDelta(index.Options{
		Kind:        index.Kind(db.cfg.IndexKind),
		VocabWidth:  db.vocab.Size(),
		PageSize:    db.cfg.PageSize,
		BufferPages: db.cfg.BufferPages,
		PoolStripes: db.cfg.PoolStripes,
	}, len(db.setNames))
	if err != nil {
		return err
	}
	db.delta = d
	return nil
}

// publishOverlayLocked builds and swaps in a new overlay generation over
// the pending layers — sealed runs plus a snapshot of the active delta.
// The base object tree is filtered by the union of every layer's
// tombstones; each feature group stacks tombstone-filtered base parts,
// then each layer's part filtered by the tombstones of newer layers only
// (so a layer's own upserts stay visible); layer-resident objects merge at
// query time. The generation bump invalidates serve-layer result caches
// exactly like a Rebuild.
func (db *DB) publishOverlayLocked() error {
	layers := make([]*ingest.Layer, 0, len(db.runs)+1)
	for _, r := range db.runs {
		r := r
		layers = append(layers, &r.Layer)
	}
	if db.delta != nil && !db.delta.Empty() {
		// Snapshot, not a view: the published engine must not share maps
		// with the delta, which keeps mutating under later Applies.
		snap, err := db.delta.Snapshot()
		if err != nil {
			return fmt.Errorf("stpq: snapshotting delta: %w", err)
		}
		layers = append(layers, snap)
	}
	if len(layers) == 0 {
		db.engine = db.base
		db.metrics.Gauge("stpq_ingest_delta_objects").Set(0)
		db.metrics.Gauge("stpq_ingest_delta_ops").Set(0)
		db.gen++
		db.inverted = nil
		return nil
	}
	deadObj := ingest.UnionDead(layers)
	objView := db.base.Objects().WithExclude(deadObj)
	groups := make([]*index.FeatureGroup, len(db.setNames))
	for i := range db.setNames {
		deadAll := ingest.UnionDeadSet(layers, i)
		baseParts := db.base.FeatureGroups()[i].Parts()
		parts := make([]*index.FeatureIndex, 0, len(baseParts)+len(layers))
		for _, p := range baseParts {
			parts = append(parts, p.WithExclude(deadAll))
		}
		for j, l := range layers {
			if l.Sets[i].Idx == nil {
				continue
			}
			parts = append(parts, l.Sets[i].Idx.WithExclude(ingest.UnionDeadSet(layers[j+1:], i)))
		}
		g, err := index.NewFeatureGroup(parts...)
		if err != nil {
			return err
		}
		groups[i] = g
	}
	eng, err := core.NewEngineWithGroups(objView, groups, db.cfg.coreOptions(db.metrics, db.tel))
	if err != nil {
		return err
	}
	deltaObjs := ingest.FoldObjects(layers)
	live := len(db.objLoc) + len(deltaObjs)
	for id := range deadObj {
		if _, ok := db.objLoc[id]; ok {
			live--
		}
	}
	overlay := ingest.NewOverlay(eng, deltaObjs, live)
	db.engine = overlay
	pending := 0
	for _, r := range db.runs {
		pending += r.Ops
	}
	if db.delta != nil {
		pending += db.delta.Ops()
	}
	db.metrics.Gauge("stpq_ingest_delta_objects").Set(float64(overlay.DeltaObjects()))
	db.metrics.Gauge("stpq_ingest_delta_ops").Set(float64(pending))
	db.gen++
	db.inverted = nil
	return nil
}

// foldSlice rebuilds a raw slice under tombstones and upserts: survivors
// keep their original order, overwritten ids are replaced in place, and
// new ids are appended in ascending id order — a deterministic fold, so
// replaying the same WAL reproduces the same bulk-load input.
func foldSlice[T any](in []T, dead map[int64]struct{}, ups map[int64]T, idOf func(T) int64) []T {
	out := make([]T, 0, len(in)+len(ups))
	pending := make(map[int64]T, len(ups))
	for id, v := range ups {
		pending[id] = v
	}
	for _, v := range in {
		id := idOf(v)
		if up, ok := pending[id]; ok {
			out = append(out, up)
			delete(pending, id)
			continue
		}
		if _, ok := dead[id]; ok {
			continue
		}
		out = append(out, v)
	}
	ids := make([]int64, 0, len(pending))
	for id := range pending {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	for _, id := range ids {
		out = append(out, pending[id])
	}
	return out
}

// materializeRawLocked reconstructs db.objects and db.sets from the base
// indexes — the bridge that lets DBs loaded with Open (which drop the raw
// slices) merge and rebuild.
func (db *DB) materializeRawLocked() error {
	objEntries, err := db.base.Objects().Tree().All()
	if err != nil {
		return fmt.Errorf("stpq: materializing objects: %w", err)
	}
	db.objects = make([]Object, len(objEntries))
	for i, e := range objEntries {
		db.objects[i] = Object{ID: e.ItemID, X: e.Point().X, Y: e.Point().Y}
	}
	for i, name := range db.setNames {
		entries, err := db.base.FeatureGroups()[i].AllExact()
		if err != nil {
			return fmt.Errorf("stpq: materializing feature set %q: %w", name, err)
		}
		feats := make([]Feature, len(entries))
		for j, e := range entries {
			feats[j] = Feature{
				ID: e.ItemID, X: e.Point().X, Y: e.Point().Y,
				Score:    e.Score,
				Keywords: db.vocab.Decode(e.Keywords),
			}
		}
		db.sets[name] = feats
	}
	return nil
}

// sortInt64s sorts ascending (sort.Slice shim to keep the generic fold
// free of reflection in the hot path).
func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
