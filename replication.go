package stpq

// replication.go is the public log-shipping surface. A leader DB (one with
// an attached WAL) exposes its sealed segments for followers to fetch;
// a follower DB — an ordinary built DB without a WAL of its own — applies
// the shipped records through ApplyReplicated, which routes them through
// the same validate/apply path crash recovery uses, so a follower's state
// after applying seq s is byte-identical to the leader's state at s.
// internal/cluster drives both ends over the cluster RPC.

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Replication error sentinels.
var (
	// ErrReplicationGap is returned by ApplyReplicated when the shipped
	// record does not directly follow the last applied sequence — the
	// leader's log was compacted past the follower's position, and the
	// follower must re-seed from a checkpoint.
	ErrReplicationGap = errors.New("stpq: replication gap")
)

// ApplyReplicated applies one shipped WAL record to a follower DB. Records
// at or below the applied watermark are skipped (idempotent re-delivery);
// a record that skips ahead fails with ErrReplicationGap. The mutations
// run through the same validation and apply path as crash recovery, so
// the follower converges on the leader's exact state.
func (db *DB) ApplyReplicated(seq uint64, payload []byte) error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.built {
		return fmt.Errorf("%w: ApplyReplicated before Build", ErrNotBuilt)
	}
	if seq <= db.walSeq {
		return nil
	}
	if seq != db.walSeq+1 {
		return fmt.Errorf("%w: record %d follows applied seq %d", ErrReplicationGap, seq, db.walSeq)
	}
	var muts []Mutation
	if err := json.Unmarshal(payload, &muts); err != nil {
		return fmt.Errorf("stpq: replicated record %d: %w", seq, err)
	}
	if err := db.validateMutationsLocked(muts); err != nil {
		return fmt.Errorf("stpq: replicated record %d: %w", seq, err)
	}
	if err := db.applyBatchLocked(muts, true); err != nil {
		return fmt.Errorf("stpq: replicated record %d: %w", seq, err)
	}
	db.walSeq = seq
	db.metrics.Counter("stpq_replica_applied_total").Add(int64(len(muts)))
	db.metrics.Gauge("stpq_replica_applied_seq").Set(float64(seq))
	return nil
}

// WALRotate seals the active WAL segment so every record appended so far
// becomes fetchable by WALSealedSegment. Leaders call it periodically to
// bound follower staleness; a no-op when the active segment is empty.
func (db *DB) WALRotate() error {
	db.mu.RLock()
	wal := db.wal
	db.mu.RUnlock()
	if wal == nil {
		return ErrNoWAL
	}
	return wal.Rotate()
}

// WALSealedSegment returns the raw bytes of the oldest sealed WAL segment
// holding records at or after from, along with the segment's first
// sequence number. It returns (0, nil, nil) when no sealed segment holds
// such records — the follower has caught up to the active segment.
func (db *DB) WALSealedSegment(from uint64) (uint64, []byte, error) {
	db.mu.RLock()
	wal := db.wal
	db.mu.RUnlock()
	if wal == nil {
		return 0, nil, ErrNoWAL
	}
	return wal.SealedSegment(from)
}
