package stpq

// concurrency_test.go verifies the concurrent read path: parallel queries
// must return byte-identical results to sequential execution with the
// paper's per-query read attribution intact, and Rebuild must swap
// indexes without disturbing queries in flight.

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// concDB builds a clustered random dataset through the public API.
func concDB(t testing.TB, cfg Config, objects, features int) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db := New(cfg)
	objs := make([]Object, objects)
	for i := range objs {
		objs[i] = Object{ID: int64(i + 1), X: rng.Float64(), Y: rng.Float64()}
	}
	db.AddObjects(objs)
	for s, name := range []string{"restaurants", "cafes"} {
		feats := make([]Feature, features)
		for i := range feats {
			kws := make([]string, 1+rng.Intn(3))
			for j := range kws {
				kws[j] = fmt.Sprintf("kw%d", rng.Intn(32))
			}
			feats[i] = Feature{
				ID: int64(s*features + i + 1), X: rng.Float64(), Y: rng.Float64(),
				Score: rng.Float64(), Keywords: kws,
			}
		}
		db.AddFeatureSet(name, feats)
	}
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	return db
}

// concQueries is a mixed workload across variants and similarity measures.
func concQueries() []Query {
	var qs []Query
	for _, variant := range []Variant{Range, Influence, NearestNeighbor} {
		for k := 1; k <= 5; k += 2 {
			qs = append(qs, Query{
				K: k, Radius: 0.08, Lambda: 0.5, Variant: variant,
				Keywords: map[string][]string{
					"restaurants": {"kw1", "kw2", fmt.Sprintf("kw%d", 3+k)},
					"cafes":       {"kw4"},
				},
			})
		}
	}
	return qs
}

// TestConcurrentMatchesSequential runs N goroutines × M queries over both
// index kinds, all three variants and both algorithms, and requires every
// concurrent result to be byte-identical to its sequential counterpart,
// with per-query Stats still satisfying LogicalReads ≥ PhysicalReads > 0.
func TestConcurrentMatchesSequential(t *testing.T) {
	const goroutines = 8
	for _, kind := range []IndexKind{SRT, IR2} {
		for _, alg := range []Algorithm{STPS, STDS} {
			t.Run(fmt.Sprintf("kind=%d/alg=%d", kind, alg), func(t *testing.T) {
				db := concDB(t, Config{IndexKind: kind, BufferPages: 64}, 400, 400)
				qs := concQueries()
				for i := range qs {
					qs[i].Algorithm = alg
				}
				want := make([][]Result, len(qs))
				var err error
				for i, q := range qs {
					want[i], _, err = db.TopK(q)
					if err != nil {
						t.Fatal(err)
					}
				}
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for r := 0; r < 2*len(qs); r++ {
							i := (g + r) % len(qs)
							res, st, err := db.TopK(qs[i])
							if err != nil {
								t.Errorf("goroutine %d query %d: %v", g, i, err)
								return
							}
							if !reflect.DeepEqual(res, want[i]) {
								t.Errorf("goroutine %d query %d: concurrent results differ\n got %v\nwant %v",
									g, i, res, want[i])
								return
							}
							if st.LogicalReads <= 0 {
								t.Errorf("goroutine %d query %d: logical reads %d, want > 0", g, i, st.LogicalReads)
								return
							}
							if st.LogicalReads < st.PhysicalReads {
								t.Errorf("goroutine %d query %d: logical %d < physical %d — interleaved accounting",
									g, i, st.LogicalReads, st.PhysicalReads)
								return
							}
						}
					}(g)
				}
				wg.Wait()
			})
		}
	}
}

// TestConcurrentStatsAttribution pins down the satellite requirement
// directly: with a buffer pool far smaller than the working set, many
// concurrent queries each observe a self-consistent read count, identical
// to what they observe when run alone.
func TestConcurrentStatsAttribution(t *testing.T) {
	db := concDB(t, Config{BufferPages: 8}, 500, 500)
	q := Query{
		K: 5, Radius: 0.1, Lambda: 0.5,
		Keywords: map[string][]string{"restaurants": {"kw1", "kw2"}},
	}
	_, alone, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, st, err := db.TopK(q)
			if err != nil {
				t.Error(err)
				return
			}
			// Logical reads are deterministic per query; physical reads
			// depend on shared cache state but can never exceed them.
			if st.LogicalReads != alone.LogicalReads {
				t.Errorf("concurrent logical reads %d != sequential %d", st.LogicalReads, alone.LogicalReads)
			}
			if st.PhysicalReads > st.LogicalReads {
				t.Errorf("physical reads %d > logical reads %d", st.PhysicalReads, st.LogicalReads)
			}
		}()
	}
	wg.Wait()
}

func TestValidateQuery(t *testing.T) {
	sets := []string{"restaurants", "cafes"}
	valid := Query{K: 3, Radius: 0.1, Lambda: 0.5,
		Keywords: map[string][]string{"restaurants": {"pizza"}}}
	if err := ValidateQuery(valid, sets); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	nn := Query{K: 3, Variant: NearestNeighbor} // radius 0 is fine for NN
	if err := ValidateQuery(nn, sets); err != nil {
		t.Fatalf("NN query with radius 0 rejected: %v", err)
	}
	bad := []Query{
		{K: 0, Radius: 0.1},
		{K: -2, Radius: 0.1},
		{K: 3, Radius: -0.1},
		{K: 3, Radius: 0}, // range variant divides by radius
		{K: 3, Radius: 0.1, Lambda: -0.5},
		{K: 3, Radius: 0.1, Lambda: 1.5},
		{K: 3, Radius: 0.1, Variant: Variant(9)},
		{K: 3, Radius: 0.1, Algorithm: Algorithm(9)},
		{K: 3, Radius: 0.1, Similarity: Similarity(9)},
		{K: 3, Radius: 0.1, Keywords: map[string][]string{"bars": {"beer"}}},
	}
	for i, q := range bad {
		err := ValidateQuery(q, sets)
		if !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("case %d: err = %v, want ErrInvalidQuery", i, err)
		}
	}
	err := ValidateQuery(Query{K: 3, Radius: 0.1,
		Keywords: map[string][]string{"bars": {"beer"}}}, sets)
	if !errors.Is(err, ErrUnknownFeatureSet) {
		t.Errorf("unknown set: err = %v, want ErrUnknownFeatureSet", err)
	}
}

func TestSnapshotBeforeBuild(t *testing.T) {
	db := New(Config{})
	if _, err := db.Snapshot(); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("Snapshot err = %v, want ErrNotBuilt", err)
	}
	if err := db.Rebuild(); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("Rebuild err = %v, want ErrNotBuilt", err)
	}
}

func TestRebuildGenerationAndSnapshotIsolation(t *testing.T) {
	db := concDB(t, Config{}, 200, 200)
	old, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if old.Generation() != 1 {
		t.Fatalf("initial generation = %d, want 1", old.Generation())
	}
	q := concQueries()[0]
	wantOld, _, err := old.TopK(q)
	if err != nil {
		t.Fatal(err)
	}

	// Grow the dataset and rebuild.
	db.AddObjects([]Object{{ID: 9001, X: 0.5, Y: 0.5}})
	db.AddFeatureSet("restaurants", []Feature{
		{ID: 9002, X: 0.5, Y: 0.5, Score: 1.0, Keywords: []string{"kw1", "brand-new-keyword"}},
	})
	if err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	fresh, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Generation() != 2 {
		t.Errorf("generation after Rebuild = %d, want 2", fresh.Generation())
	}
	if fresh.NumObjects() != 201 {
		t.Errorf("rebuilt objects = %d, want 201", fresh.NumObjects())
	}

	// The old snapshot still answers, identically to before the rebuild.
	gotOld, _, err := old.TopK(q)
	if err != nil {
		t.Fatalf("old snapshot after Rebuild: %v", err)
	}
	if !reflect.DeepEqual(gotOld, wantOld) {
		t.Error("old snapshot's results changed after Rebuild")
	}

	// The new keyword is only queryable at the new generation.
	nq := Query{K: 5, Radius: 0.2, Lambda: 1,
		Keywords: map[string][]string{"restaurants": {"brand-new-keyword"}}}
	res, _, err := fresh.TopK(nq)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Score > 0 {
			found = true
		}
	}
	if !found {
		t.Error("rebuilt index does not score the newly added feature")
	}
}

func TestRebuildDuringQueries(t *testing.T) {
	db := concDB(t, Config{}, 300, 300)
	qs := concQueries()
	var wg sync.WaitGroup
	stopped := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopped:
					return
				default:
				}
				q := qs[(g+i)%len(qs)]
				if res, _, err := db.TopK(q); err != nil {
					t.Errorf("query during rebuild: %v", err)
					return
				} else if len(res) == 0 {
					t.Error("query during rebuild returned no results")
					return
				}
			}
		}(g)
	}
	for i := 0; i < 3; i++ {
		if err := db.Rebuild(); err != nil {
			t.Errorf("rebuild %d: %v", i, err)
		}
	}
	close(stopped)
	wg.Wait()
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation() != 4 {
		t.Errorf("generation = %d, want 4 after 3 rebuilds", snap.Generation())
	}
}

func TestRebuildOpenedDBFails(t *testing.T) {
	dir := t.TempDir()
	src := concDB(t, Config{}, 50, 50)
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Rebuild(); err == nil {
		t.Error("Rebuild on an opened DB (no raw data) must fail")
	}
}
