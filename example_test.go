package stpq_test

import (
	"fmt"
	"log"

	"stpq"
)

// ExampleDB_TopK reproduces the paper's motivating query: hotels with a
// highly rated Italian restaurant that serves pizza nearby.
func ExampleDB_TopK() {
	db := stpq.New(stpq.Config{})
	db.AddObjects([]stpq.Object{
		{ID: 1, X: 0.20, Y: 0.20},
		{ID: 2, X: 0.52, Y: 0.48},
	})
	db.AddFeatureSet("restaurants", []stpq.Feature{
		{ID: 1, X: 0.21, Y: 0.22, Score: 0.9, Keywords: []string{"steak", "bbq"}},
		{ID: 2, X: 0.50, Y: 0.50, Score: 0.8, Keywords: []string{"pizza", "italian"}},
	})
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}
	results, _, err := db.TopK(stpq.Query{
		K:      2,
		Radius: 0.1,
		Lambda: 0.5,
		Keywords: map[string][]string{
			"restaurants": {"italian", "pizza"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. hotel %d score %.2f\n", i+1, r.ID, r.Score)
	}
	// Output:
	// 1. hotel 2 score 0.90
	// 2. hotel 1 score 0.00
}

// ExampleDB_Selectivity shows how to gauge query keyword cost before
// running a query.
func ExampleDB_Selectivity() {
	db := stpq.New(stpq.Config{})
	db.AddObjects([]stpq.Object{{ID: 1, X: 0.5, Y: 0.5}})
	db.AddFeatureSet("restaurants", []stpq.Feature{
		{ID: 1, X: 0.5, Y: 0.5, Score: 0.8, Keywords: []string{"pizza"}},
		{ID: 2, X: 0.4, Y: 0.4, Score: 0.6, Keywords: []string{"sushi"}},
		{ID: 3, X: 0.6, Y: 0.6, Score: 0.7, Keywords: []string{"pizza", "pasta"}},
		{ID: 4, X: 0.3, Y: 0.6, Score: 0.9, Keywords: []string{"tacos"}},
	})
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}
	sel, err := db.Selectivity("restaurants", []string{"pizza"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pizza matches %.0f%% of restaurants\n", sel*100)
	// Output:
	// pizza matches 50% of restaurants
}
