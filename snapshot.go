package stpq

// snapshot.go implements the serving-side view of a DB: an immutable
// Snapshot handle that queries run against, and Rebuild, which constructs
// a fresh engine and swaps it in without disturbing in-flight queries.
//
// A Snapshot pins the engine, vocabulary and feature-set names that were
// current when it was taken. Rebuild replaces those pointers atomically
// (under the DB lock) and bumps the generation counter; queries running
// against an older snapshot finish on the old engine, whose indexes and
// page caches stay valid. The generation number is how the serving layer
// (internal/serve) invalidates its result cache on rebuild.

import (
	"fmt"
	"time"

	"stpq/internal/approx"
	"stpq/internal/core"
	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/kwset"
	"stpq/internal/obs"
	"stpq/internal/plan"
	"stpq/internal/shard"
)

// Snapshot is an immutable handle onto a built DB's indexes. It is safe
// for concurrent use: any number of goroutines may call TopK on the same
// Snapshot, and a Snapshot keeps working after the DB is rebuilt.
type Snapshot struct {
	engine queryEngine
	vocab  *kwset.Vocabulary
	names  []string
	gen    uint64
	tel    *obs.Telemetry
}

// Snapshot returns a handle onto the current indexes. It fails with
// ErrNotBuilt before Build.
func (db *DB) Snapshot() (*Snapshot, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.built {
		return nil, fmt.Errorf("%w: Snapshot before Build", ErrNotBuilt)
	}
	return &Snapshot{engine: db.engine, vocab: db.vocab, names: db.setNames, gen: db.gen, tel: db.tel}, nil
}

// Generation returns the build generation the snapshot was taken at: 1
// after the first Build, incremented by every Rebuild. Serving layers use
// it to detect that cached results belong to a superseded index.
func (s *Snapshot) Generation() uint64 { return s.gen }

// FeatureSetNames returns the feature-set names of this snapshot in
// registration order.
func (s *Snapshot) FeatureSetNames() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// NumObjects returns the number of indexed data objects.
func (s *Snapshot) NumObjects() int { return s.engine.NumObjects() }

// NumShards returns the number of sub-engines serving this snapshot (1 on
// an unsharded DB).
func (s *Snapshot) NumShards() int {
	if e, ok := s.engine.(*shard.Engine); ok {
		return e.NumShards()
	}
	return 1
}

// NumFeatures returns the number of features per set, keyed by set name.
func (s *Snapshot) NumFeatures() map[string]int {
	out := make(map[string]int, len(s.names))
	for i, name := range s.names {
		out[name] = s.engine.FeatureGroups()[i].Len()
	}
	return out
}

// forcedAlg maps the public algorithm choice to the planner's forced-
// algorithm string: "" means Auto (the planner decides).
func forcedAlg(a Algorithm) string {
	switch a {
	case STDS:
		return plan.AlgSTDS
	case Auto:
		return ""
	default:
		return plan.AlgSTPS
	}
}

// planner returns the cost-based planner over this snapshot's per-shape
// statistics. The zero planner (nil shapes) is valid and always cold.
func (s *Snapshot) planner() plan.Planner {
	p := plan.Planner{}
	if s.tel != nil {
		p.Shapes = s.tel.Shapes
	}
	return p
}

// resolve turns the query's algorithm choice (possibly Auto) into the
// concrete algorithm and applies the planner's fan-out decision to the
// lowered query. The fast path — a forced algorithm on an unsharded
// engine — bypasses the planner entirely, so existing callers pay nothing.
func (s *Snapshot) resolve(q Query, cq *core.Query) string {
	forced := forcedAlg(q.Algorithm)
	eng, sharded := s.engine.(*shard.Engine)
	if forced != "" && !sharded {
		return forced
	}
	p := s.planner()
	alg, cost, known := p.Resolve(core.QueryShapeKey("", cq), forced)
	if sharded {
		cq.Fanout = p.FanoutWidth(cost, known, eng.NumShards())
	}
	return alg
}

// TopK runs the query against the snapshot and returns the k best objects
// with execution statistics. Safe for concurrent use. With Algorithm:
// Auto, the cost-based planner picks the algorithm from recorded per-shape
// statistics; results are byte-identical to either forced algorithm.
func (s *Snapshot) TopK(q Query) ([]Result, Stats, error) {
	cq, err := s.toCoreQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	var (
		res []core.Result
		st  core.Stats
	)
	if s.resolve(q, &cq) == plan.AlgSTDS {
		res, st, err = s.engine.STDS(cq)
	} else {
		res, st, err = s.engine.STPS(cq)
	}
	if err != nil {
		return nil, Stats{}, err
	}
	if a := cq.Approx; a != nil {
		// The request's counters hold the whole logical query's totals
		// (shard sub-queries alias the same request), loaded exactly once
		// here.
		st.ApproxCandidates = a.Candidates.Load()
		st.ApproxPruned = a.Pruned.Load()
		st.ApproxSkippedReads = a.SkippedReads.Load()
	}
	// A trace collected only provisionally — so a slow-query capture would
	// be complete — is not part of the answer unless the query actually
	// crossed the threshold.
	if st.Trace != nil && !st.Trace.Kept() &&
		!(s.tel != nil && s.tel.SlowThreshold > 0 && st.CPUTime >= s.tel.SlowThreshold) {
		st.Trace = nil
	}
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{ID: r.ID, X: r.Location.X, Y: r.Location.Y, Score: r.Score}
	}
	return out, fromCoreStats(st), nil
}

// UpperBound returns an admissible upper bound on the best score any
// object of this snapshot can reach under the query: no indexed object
// scores strictly above it. A cluster node answers the coordinator's
// scatter probe with it, turning the sharded engine's wave-pruning rule
// into a network protocol.
func (s *Snapshot) UpperBound(q Query) (float64, error) {
	cq, err := s.toCoreQuery(q)
	if err != nil {
		return 0, err
	}
	return s.engine.UpperBoundAll(cq)
}

// Score computes the exact spatio-textual preference score of an arbitrary
// location under the query, by brute force. Intended for debugging and
// verification, not for production use.
func (s *Snapshot) Score(q Query, x, y float64) (float64, error) {
	cq, err := s.toCoreQuery(q)
	if err != nil {
		return 0, err
	}
	return s.engine.ExactScore(cq, geo.Point{X: x, Y: y})
}

// toCoreQuery validates and lowers a public query against the snapshot.
func (s *Snapshot) toCoreQuery(q Query) (core.Query, error) {
	if err := ValidateQuery(q, s.names); err != nil {
		return core.Query{}, err
	}
	kws := make([]kwset.Set, len(s.names))
	for i, name := range s.names {
		kws[i] = s.vocab.LookupSet(q.Keywords[name]...)
	}
	cq := core.Query{
		K:          q.K,
		Radius:     q.Radius,
		Lambda:     q.Lambda,
		Keywords:   kws,
		Variant:    core.Variant(q.Variant),
		Similarity: index.Similarity(q.Similarity),
		RequestID:  q.RequestID,
		Trace:      core.TraceMode(q.Trace),
	}
	if q.Mode == ModeApprox {
		// One request per logical query: shard fan-out and session copies
		// alias it, so its atomic counters aggregate the whole execution.
		cq.Approx = approx.NewRequest(q.Recall)
	}
	return cq, nil
}

// RecordCacheHit files an event record for a query answered from a
// serving-layer result cache under the snapshot's telemetry: the request
// stays attributable in the event log even though no engine ran.
func (s *Snapshot) RecordCacheHit(q Query, start time.Time, elapsed time.Duration) {
	if s.tel == nil {
		return
	}
	cq, err := s.toCoreQuery(q)
	if err != nil {
		return
	}
	// Auto queries are attributed to the algorithm the planner would pick,
	// matching how the cached execution was recorded.
	core.RecordCacheHit(s.tel, s.resolve(q, &cq), &cq, start, elapsed)
}

// PredictCost resolves the query through the planner and returns the
// canonical shape label of the resolved plan plus its predicted mean total
// cost. known is false — and cost zero — while the resolved shape has
// fewer than MinPredictSamples recorded executions; the serve layer's
// cost-aware admission then falls back to queue-only admission.
func (s *Snapshot) PredictCost(q Query) (shape string, cost time.Duration, known bool, err error) {
	cq, err := s.toCoreQuery(q)
	if err != nil {
		return "", 0, false, err
	}
	p := s.planner()
	key := core.QueryShapeKey("", &cq)
	alg, cost, known := p.Resolve(key, forcedAlg(q.Algorithm))
	key.Alg = alg
	if s.tel != nil {
		shape = s.tel.Shapes.Name(key)
	} else {
		shape = key.String()
	}
	if !known {
		cost = 0
	}
	return shape, cost, known, nil
}

// PlanQuery reports the planner's full decision for the query — chosen
// algorithm, reason, predicted cost, the alternatives considered and the
// scatter fan-out width — without executing it. DB.Explain embeds the same
// decision.
func (s *Snapshot) PlanQuery(q Query) (*PlanDecision, error) {
	cq, err := s.toCoreQuery(q)
	if err != nil {
		return nil, err
	}
	d := s.decide(q, &cq)
	pd := fromPlanDecision(d)
	return &pd, nil
}

// decide computes the full planner decision for a validated query.
func (s *Snapshot) decide(q Query, cq *core.Query) plan.Decision {
	p := s.planner()
	d := p.Decide(core.QueryShapeKey("", cq), forcedAlg(q.Algorithm))
	if eng, ok := s.engine.(*shard.Engine); ok {
		d.Fanout = p.FanoutWidth(d.Cost, d.CostKnown, eng.NumShards())
	}
	return d
}

// Rebuild reconstructs the indexes from the raw objects and feature sets —
// including any added with AddObjects/AddFeatureSet since the last build —
// and atomically swaps them in. Queries already in flight finish against
// the previous snapshot; new snapshots observe an incremented Generation.
// DBs loaded with Open do not retain the raw data and cannot be rebuilt.
func (db *DB) Rebuild() error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.built {
		return fmt.Errorf("%w: Rebuild before Build", ErrNotBuilt)
	}
	if len(db.objects) == 0 {
		return fmt.Errorf("stpq: Rebuild requires the raw data, which DBs loaded with Open do not retain")
	}
	if db.pendingLocked() {
		// Fold pending live-ingest mutations (sealed runs and the active
		// delta) into the raw data so the rebuild does not lose them. The
		// merge is forced down the full-rebuild path because raw data may
		// have been added since the last build; mergeLocked clones the
		// vocabulary and runs buildLocked itself.
		return db.mergeLocked(nil, true)
	}
	// Intern into a clone so queries on the previous snapshot keep a
	// stable vocabulary; buildLocked swaps db.engine and bumps db.gen.
	db.vocab = db.vocab.Clone()
	return db.buildLocked()
}
