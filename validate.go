package stpq

// validate.go centralizes query validation: one function, shared by the
// library entry points (DB.TopK, DB.Score) and the HTTP query handler of
// internal/serve, returning errors that wrap ErrInvalidQuery so callers
// can map every rejection to a 400 with errors.Is.

import (
	"errors"
	"fmt"
)

// ErrInvalidQuery is the sentinel wrapped by every query-validation error.
var ErrInvalidQuery = errors.New("stpq: invalid query")

// ErrUnknownFeatureSet is wrapped by validation errors about keyword sets
// that name no registered feature set. It wraps ErrInvalidQuery, so
// errors.Is(err, ErrInvalidQuery) also holds.
var ErrUnknownFeatureSet = fmt.Errorf("%w: unknown feature set", ErrInvalidQuery)

// ErrNotBuilt is returned by queries and snapshots taken before Build.
var ErrNotBuilt = errors.New("stpq: not built")

// ValidateQuery checks q against the registered feature-set names,
// rejecting non-positive K, negative Radius (or zero Radius for the range
// and influence variants, which divide by it), Lambda outside [0,1],
// out-of-range enumeration values and unknown feature-set names. Every
// error wraps ErrInvalidQuery.
func ValidateQuery(q Query, featureSets []string) error {
	if q.K <= 0 {
		return fmt.Errorf("%w: K must be positive, got %d", ErrInvalidQuery, q.K)
	}
	if q.Variant < Range || q.Variant > NearestNeighbor {
		return fmt.Errorf("%w: unknown variant %d", ErrInvalidQuery, int(q.Variant))
	}
	if q.Algorithm < STPS || q.Algorithm > Auto {
		return fmt.Errorf("%w: unknown algorithm %d", ErrInvalidQuery, int(q.Algorithm))
	}
	if q.Similarity < JaccardSim || q.Similarity > OverlapSim {
		return fmt.Errorf("%w: unknown similarity %d", ErrInvalidQuery, int(q.Similarity))
	}
	if q.Radius < 0 {
		return fmt.Errorf("%w: radius must not be negative, got %v", ErrInvalidQuery, q.Radius)
	}
	if q.Variant != NearestNeighbor && q.Radius == 0 {
		return fmt.Errorf("%w: radius must be positive for the %s variant", ErrInvalidQuery, variantName(q.Variant))
	}
	if q.Lambda < 0 || q.Lambda > 1 {
		return fmt.Errorf("%w: lambda %v outside [0,1]", ErrInvalidQuery, q.Lambda)
	}
	switch q.Mode {
	case "", ModeExact, ModeApprox:
	default:
		return fmt.Errorf("%w: unknown mode %q (want %q or %q)", ErrInvalidQuery, q.Mode, ModeExact, ModeApprox)
	}
	if q.Recall != 0 {
		if q.Mode != ModeApprox {
			return fmt.Errorf("%w: recall is only valid with mode %q", ErrInvalidQuery, ModeApprox)
		}
		// The positive-range test also rejects NaN (every comparison with
		// NaN is false).
		if !(q.Recall > 0 && q.Recall <= 1) {
			return fmt.Errorf("%w: recall %v outside (0,1]", ErrInvalidQuery, q.Recall)
		}
	}
	for name := range q.Keywords {
		known := false
		for _, n := range featureSets {
			if n == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("%w %q", ErrUnknownFeatureSet, name)
		}
	}
	return nil
}

// variantName names a variant without relying on a Stringer on the public
// enum (kept minimal on purpose).
func variantName(v Variant) string {
	switch v {
	case Range:
		return "range"
	case Influence:
		return "influence"
	case NearestNeighbor:
		return "nearest-neighbor"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}
