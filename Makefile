GO ?= go

.PHONY: build test race vet lint bench-smoke serve-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis and vulnerability scan. Each tool is optional locally —
# install with `go install honnef.co/go/tools/cmd/staticcheck@latest` and
# `go install golang.org/x/vuln/cmd/govulncheck@latest` — but CI runs both.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

# A single small benchmark data point, one iteration: catches bit-rot in the
# benchmark harness without the cost of a full sweep.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkFig7/a_features=10000' -benchtime 1x .

# End-to-end daemon smoke test: start stpqd on a small synthetic dataset,
# wait for /healthz, fire a short stpqload run, then shut down gracefully.
SMOKE_ADDR ?= 127.0.0.1:18321
serve-smoke:
	$(GO) build -o /tmp/stpqd-smoke ./cmd/stpqd
	$(GO) build -o /tmp/stpqload-smoke ./cmd/stpqload
	/tmp/stpqd-smoke -synthetic -objects 2000 -features 2000 -addr $(SMOKE_ADDR) & \
	pid=$$!; \
	trap 'kill -INT $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	curl -fsS http://$(SMOKE_ADDR)/healthz && \
	/tmp/stpqload-smoke -addr http://$(SMOKE_ADDR) -c 2 -n 50 -k 5 && \
	curl -fsS http://$(SMOKE_ADDR)/metrics | grep -q stpq_serve_queries_total && \
	kill -INT $$pid && wait $$pid

check: build vet test race
