GO ?= go

.PHONY: build test race vet bench-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# A single small benchmark data point, one iteration: catches bit-rot in the
# benchmark harness without the cost of a full sweep.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkFig7/a_features=10000' -benchtime 1x .

check: build vet test race
