GO ?= go

.PHONY: build test race vet lint cover bench-smoke bench-compare alloc-regression serve-smoke ingest-smoke compaction-smoke cluster-smoke plan-smoke approx-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Coverage profile across every package, with a per-function summary. CI
# uploads the profile as a build artifact; render it locally with
# `go tool cover -html=cover.out`.
COVER_OUT ?= cover.out
cover:
	$(GO) test -coverprofile=$(COVER_OUT) -covermode=atomic ./...
	$(GO) tool cover -func=$(COVER_OUT) | tail -n 1

# Static analysis and vulnerability scan. Each tool is optional locally —
# install with `go install honnef.co/go/tools/cmd/staticcheck@latest` and
# `go install golang.org/x/vuln/cmd/govulncheck@latest` — but CI runs both.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

# A single small benchmark data point, one iteration: catches bit-rot in the
# benchmark harness without the cost of a full sweep.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkFig7/a_features=10000' -benchtime 1x .

# Before/after benchmark comparison for perf work. Run once on the base
# commit (`make bench-compare BENCH_OUT=old.txt`), once on the change
# (`... BENCH_OUT=new.txt`), then benchstat compares them — install with
# `go install golang.org/x/perf/cmd/benchstat@latest`. Without benchstat
# the raw `go test -bench` output is still written for manual diffing.
BENCH_OUT ?= bench-new.txt
BENCH_BASE ?= bench-old.txt
bench-compare:
	$(GO) test -run NONE -bench 'BenchmarkFig7' -benchtime 10x -benchmem -count 5 . | tee $(BENCH_OUT)
	@if command -v benchstat >/dev/null 2>&1; then \
		if [ -f $(BENCH_BASE) ]; then \
			benchstat $(BENCH_BASE) $(BENCH_OUT); \
		else \
			echo "bench-compare: no $(BENCH_BASE) baseline; rerun on the base commit with BENCH_OUT=$(BENCH_BASE)"; \
		fi; \
	else \
		echo "bench-compare: benchstat not installed, wrote raw output to $(BENCH_OUT)"; \
	fi

# The zero-alloc / allocation-budget regression tests: kwset.Jaccard and
# the buffer-pool hit path must stay allocation-free, steady-state top-k
# queries must stay under their documented budgets (internal/core), and the
# unsampled event-log record path must stay within one allocation per query
# (internal/obs).
alloc-regression:
	$(GO) test -run 'TestAllocs' -v ./internal/kwset/ ./internal/storage/ ./internal/core/ ./internal/obs/

# End-to-end daemon smoke test: start stpqd on a small synthetic dataset,
# wait for /healthz, fire a short stpqload run, then shut down gracefully.
SMOKE_ADDR ?= 127.0.0.1:18321
serve-smoke:
	$(GO) build -o /tmp/stpqd-smoke ./cmd/stpqd
	$(GO) build -o /tmp/stpqload-smoke ./cmd/stpqload
	/tmp/stpqd-smoke -synthetic -objects 2000 -features 2000 -addr $(SMOKE_ADDR) & \
	pid=$$!; \
	trap 'kill -INT $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	curl -fsS http://$(SMOKE_ADDR)/healthz && \
	/tmp/stpqload-smoke -addr http://$(SMOKE_ADDR) -c 2 -n 50 -k 5 && \
	curl -fsS http://$(SMOKE_ADDR)/metrics | grep -q stpq_serve_queries_total && \
	kill -INT $$pid && wait $$pid

# Crash-recovery smoke test: start a WAL-backed stpqd, apply durable
# mutation batches over POST /ingest, SIGKILL the daemon (no graceful
# shutdown), restart it on the same log + seed, and verify every
# acknowledged mutation was replayed (stpq_ingest_replayed_total). A
# short mixed read/write stpqload run then exercises the delta overlay
# under load.
INGEST_ADDR ?= 127.0.0.1:18322
INGEST_WAL := /tmp/stpq-ingest-smoke-wal
ingest-smoke:
	$(GO) build -o /tmp/stpqd-smoke ./cmd/stpqd
	$(GO) build -o /tmp/stpqload-smoke ./cmd/stpqload
	rm -rf $(INGEST_WAL)
	/tmp/stpqd-smoke -synthetic -objects 2000 -features 2000 -wal-dir $(INGEST_WAL) -addr $(INGEST_ADDR) & \
	pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://$(INGEST_ADDR)/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	curl -fsS http://$(INGEST_ADDR)/ingest -d '{"objects":[{"id":900001,"x":0.5,"y":0.5}],"features":{"set1":[{"id":900002,"x":0.5,"y":0.5,"score":0.9,"keywords":["kw1"]}]}}' && echo && \
	curl -fsS http://$(INGEST_ADDR)/ingest -d '{"objects":[{"id":900003,"x":0.25,"y":0.75}],"delete_objects":[17]}' && echo && \
	curl -fsS http://$(INGEST_ADDR)/ingest -d '{"delete_features":{"set2":[42]}}' && echo && \
	kill -9 $$pid; wait $$pid 2>/dev/null; \
	/tmp/stpqd-smoke -synthetic -objects 2000 -features 2000 -wal-dir $(INGEST_WAL) -addr $(INGEST_ADDR) & \
	pid=$$!; \
	trap 'kill -INT $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://$(INGEST_ADDR)/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	curl -fsS http://$(INGEST_ADDR)/metrics | grep -q 'stpq_ingest_replayed_total 5$$' && \
	echo "ingest-smoke: all 5 acknowledged mutations replayed after SIGKILL" && \
	/tmp/stpqload-smoke -addr http://$(INGEST_ADDR) -c 2 -n 60 -k 5 -write-frac 0.3 && \
	kill -INT $$pid && wait $$pid

# Incremental-compaction smoke test: a WAL-backed stpqd with background
# compaction, a tiny auto-flush threshold and auto-checkpointing takes a
# sustained mixed read/write load; the run must show sealed runs merging
# off the write path (partial merges or completed compactions in /metrics)
# and an automatic checkpoint landing on disk. The daemon is then
# SIGKILLed and restarted from the checkpoint directory: the manifest's
# WAL position replays only the tail, and queries keep answering.
COMPACT_ADDR ?= 127.0.0.1:18323
COMPACT_WAL := /tmp/stpq-compaction-smoke-wal
COMPACT_CKPT := /tmp/stpq-compaction-smoke-ckpt
compaction-smoke:
	$(GO) build -o /tmp/stpqd-smoke ./cmd/stpqd
	$(GO) build -o /tmp/stpqload-smoke ./cmd/stpqload
	rm -rf $(COMPACT_WAL) $(COMPACT_CKPT)
	mkdir -p $(COMPACT_CKPT)
	/tmp/stpqd-smoke -synthetic -objects 2000 -features 2000 -wal-dir $(COMPACT_WAL) \
		-auto-flush-ops 64 -background-compaction -compact-runs 1 \
		-checkpoint-every-ops 300 -checkpoint-dir $(COMPACT_CKPT) -addr $(COMPACT_ADDR) & \
	pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://$(COMPACT_ADDR)/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	/tmp/stpqload-smoke -addr http://$(COMPACT_ADDR) -c 4 -n 600 -k 5 -write-frac 0.5 && \
	for i in $$(seq 1 50); do \
		if [ -f $(COMPACT_CKPT)/stpq.json ]; then break; fi; \
		sleep 0.2; \
	done; \
	test -f $(COMPACT_CKPT)/stpq.json && \
	curl -fsS http://$(COMPACT_ADDR)/metrics | grep -E 'stpq_ingest_(partial_merges|compactions)_total [1-9]' && \
	curl -fsS http://$(COMPACT_ADDR)/info | grep -q '"walAttached":true' && \
	echo "compaction-smoke: runs merged off the write path, auto-checkpoint landed" && \
	kill -9 $$pid; wait $$pid 2>/dev/null; \
	/tmp/stpqd-smoke -open $(COMPACT_CKPT) -addr $(COMPACT_ADDR) & \
	pid=$$!; \
	trap 'kill -INT $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://$(COMPACT_ADDR)/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	curl -fsS http://$(COMPACT_ADDR)/query -d '{"k":5,"radius":0.05,"keywords":{"set1":["kw1","kw2"],"set2":["kw3"]}}' | grep -q '"results"' && \
	echo "compaction-smoke: recovered from checkpoint + WAL tail after SIGKILL" && \
	kill -INT $$pid && wait $$pid

# Distributed-mode smoke test: partition one synthetic dataset across 3
# cluster nodes, start a scatter-gather coordinator over them plus a
# single-process stpqd on the same dataset, and require byte-identical
# results from both for a spread of query shapes (both algorithms, range
# and influence variants). A short stpqload run against the coordinator
# then exercises it under concurrency.
CLUSTER_MAP := /tmp/stpq-cluster-smoke-map.json
CLUSTER_DATA := -synthetic -objects 2000 -features 2000
cluster-smoke:
	$(GO) build -o /tmp/stpqd-smoke ./cmd/stpqd
	$(GO) build -o /tmp/stpqload-smoke ./cmd/stpqload
	rm -f $(CLUSTER_MAP)
	/tmp/stpqd-smoke $(CLUSTER_DATA) -write-cluster-map $(CLUSTER_MAP) \
		-cluster-leaders 127.0.0.1:19341,127.0.0.1:19342,127.0.0.1:19343
	/tmp/stpqd-smoke $(CLUSTER_DATA) -cluster-node -node-id 0 -cluster-map $(CLUSTER_MAP) \
		-rpc 127.0.0.1:19341 -addr 127.0.0.1:18341 & p0=$$!; \
	/tmp/stpqd-smoke $(CLUSTER_DATA) -cluster-node -node-id 1 -cluster-map $(CLUSTER_MAP) \
		-rpc 127.0.0.1:19342 -addr 127.0.0.1:18342 & p1=$$!; \
	/tmp/stpqd-smoke $(CLUSTER_DATA) -cluster-node -node-id 2 -cluster-map $(CLUSTER_MAP) \
		-rpc 127.0.0.1:19343 -addr 127.0.0.1:18343 & p2=$$!; \
	/tmp/stpqd-smoke -cluster-coordinator -cluster-map $(CLUSTER_MAP) -addr 127.0.0.1:18340 & pc=$$!; \
	/tmp/stpqd-smoke $(CLUSTER_DATA) -addr 127.0.0.1:18349 & ps=$$!; \
	trap 'kill -INT $$p0 $$p1 $$p2 $$pc $$ps 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do \
		if curl -fsS http://127.0.0.1:18340/readyz >/dev/null 2>&1 && \
		   curl -fsS http://127.0.0.1:18349/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	curl -fsS http://127.0.0.1:18340/readyz >/dev/null && \
	for q in '{"k":5,"radius":0.05,"keywords":{"set1":["kw1","kw2"],"set2":["kw3"]}}' \
		'{"k":10,"radius":0.05,"keywords":{"set1":["kw7"],"set2":["kw8","kw9"]},"algorithm":"stds"}' \
		'{"k":7,"variant":"influence","radius":0.1,"keywords":{"set1":["kw4"],"set2":["kw5"]}}'; do \
		curl -fsS http://127.0.0.1:18340/query -d "$$q" > /tmp/stpq-cluster-got.json && \
		curl -fsS http://127.0.0.1:18349/query -d "$$q" > /tmp/stpq-cluster-want.json && \
		python3 -c 'import json; \
got = json.load(open("/tmp/stpq-cluster-got.json"))["results"]; \
want = json.load(open("/tmp/stpq-cluster-want.json"))["results"]; \
assert json.dumps(got, sort_keys=True) == json.dumps(want, sort_keys=True), \
	"cluster results diverge from single process:\n got %r\nwant %r" % (got, want)' \
		|| exit 1; \
	done; \
	echo "cluster-smoke: coordinator results byte-identical to single process" && \
	/tmp/stpqload-smoke -targets http://127.0.0.1:18340 -c 2 -n 50 -k 5 && \
	curl -fsS http://127.0.0.1:18340/metrics | grep -q stpq_cluster_queries_total && \
	kill -INT $$p0 $$p1 $$p2 $$pc $$ps && wait

# Planner smoke test, two halves. Correctness: an auto-planning stpqd and a
# forced-STPS control on the same synthetic seed must return byte-identical
# results — cold (first request) and after the shape statistics warm past
# the prediction floor — for defaulted, forced-stds and influence queries.
# Admission: a third daemon with a deliberately tiny -max-inflight-cost is
# warmed single-file (no overlap, nothing shed), then hammered by a
# concurrent closed loop; the predicted-cost shed must show up both in the
# daemon's /metrics (rejected + per-shape counters) and in stpqload's
# non-2xx breakdown as "HTTP 429 (shed-expensive-cost)".
PLAN_AUTO_ADDR ?= 127.0.0.1:18351
PLAN_CTRL_ADDR ?= 127.0.0.1:18352
PLAN_SHED_ADDR ?= 127.0.0.1:18353
PLAN_DATA := -synthetic -objects 2000 -features 2000
plan-smoke:
	$(GO) build -o /tmp/stpqd-smoke ./cmd/stpqd
	$(GO) build -o /tmp/stpqload-smoke ./cmd/stpqload
	/tmp/stpqd-smoke $(PLAN_DATA) -plan auto -addr $(PLAN_AUTO_ADDR) & pa=$$!; \
	/tmp/stpqd-smoke $(PLAN_DATA) -plan stps -addr $(PLAN_CTRL_ADDR) & pb=$$!; \
	trap 'kill -INT $$pa $$pb 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://$(PLAN_AUTO_ADDR)/healthz >/dev/null 2>&1 && \
		   curl -fsS http://$(PLAN_CTRL_ADDR)/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	for q in '{"k":5,"radius":0.05,"keywords":{"set1":["kw1","kw2"],"set2":["kw3"]}}' \
		'{"k":10,"radius":0.05,"keywords":{"set1":["kw7"],"set2":["kw8","kw9"]},"algorithm":"stds"}' \
		'{"k":7,"variant":"influence","radius":0.1,"keywords":{"set1":["kw4"],"set2":["kw5"]}}'; do \
		for pass in cold warm1 warm2 warm3 warm4 warm5; do \
			curl -fsS http://$(PLAN_AUTO_ADDR)/query -d "$$q" > /tmp/stpq-plan-got.json || exit 1; \
			curl -fsS http://$(PLAN_CTRL_ADDR)/query -d "$$q" > /tmp/stpq-plan-want.json || exit 1; \
			python3 -c 'import json; \
	got = json.load(open("/tmp/stpq-plan-got.json"))["results"]; \
	want = json.load(open("/tmp/stpq-plan-want.json"))["results"]; \
	assert json.dumps(got, sort_keys=True) == json.dumps(want, sort_keys=True), \
		"auto plan diverges from forced control:\n got %r\nwant %r" % (got, want)' \
			|| exit 1; \
		done; \
	done; \
	curl -fsS http://$(PLAN_AUTO_ADDR)/query \
		-d '{"k":5,"radius":0.05,"keywords":{"set1":["kw1","kw2"],"set2":["kw3"]},"algorithm":"auto","explain":true}' \
		| grep -q '"plan"' || exit 1; \
	echo "plan-smoke: auto results byte-identical to forced control, cold and warm"; \
	kill -INT $$pa $$pb && wait $$pa $$pb 2>/dev/null; \
	/tmp/stpqd-smoke $(PLAN_DATA) -plan auto -cache -1 -max-inflight-cost 1ns -addr $(PLAN_SHED_ADDR) & ps=$$!; \
	trap 'kill -INT $$ps 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://$(PLAN_SHED_ADDR)/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	/tmp/stpqload-smoke -addr http://$(PLAN_SHED_ADDR) -algorithm auto -c 1 -n 10 -k 5 >/dev/null && \
	/tmp/stpqload-smoke -addr http://$(PLAN_SHED_ADDR) -algorithm auto -c 8 -n 400 -k 5 \
		| tee /tmp/stpq-plan-shed.txt && \
	grep -q 'HTTP 429 (shed-expensive-cost)' /tmp/stpq-plan-shed.txt && \
	curl -fsS http://$(PLAN_SHED_ADDR)/metrics | grep -E 'stpq_serve_rejected_total\{reason="expensive"\} [1-9]' && \
	curl -fsS http://$(PLAN_SHED_ADDR)/metrics | grep -q 'stpq_serve_shed_total{shape=' && \
	echo "plan-smoke: cost-based shed visible in /metrics and the stpqload breakdown" && \
	kill -INT $$ps && wait $$ps

# Approximate fast-tier smoke test: serve a signature-file IR² index whose
# record file dwarfs a deliberately small buffer pool, then fire the same
# workload in exact and approx (recall 0.9) mode side by side. The approx
# answers must recover at least 80% of the exact top-k while their reported
# cost p99 beats the exact p99 (skip-verify answers from MinHash estimates
# instead of paying record verification reads), a mixed stpqload run must
# report the per-mode latency split, and the approx counters must show up
# in /metrics and as a mode=approx dimension in /debug/shapes.
APPROX_ADDR ?= 127.0.0.1:18361
define APPROX_SMOKE_PY
import json, urllib.request
base = "http://$(APPROX_ADDR)"
def q(body):
    req = urllib.request.Request(base + "/query", json.dumps(body).encode(), {"Content-Type": "application/json"})
    return json.load(urllib.request.urlopen(req))
q({"k": 5, "radius": 0.01, "mode": "approx", "keywords": {"set1": ["kw0"], "set2": ["kw1"]}})  # build the sketch off the clock
exact_us, approx_us, recalls = [], [], []
for i in range(20):
    kw = {"set1": ["kw%d" % (i % 64), "kw%d" % ((i * 7 + 1) % 64)], "set2": ["kw%d" % ((i * 3 + 2) % 64)]}
    body = {"k": 10, "radius": 0.01, "keywords": kw}
    e = q(body)
    a = q(dict(body, mode="approx", recall=0.9))
    assert a["stats"].get("approx_candidates", 0) > 0, "approx stats missing from the response"
    exact_us.append(e["stats"]["total_us"])
    approx_us.append(a["stats"]["total_us"])
    want = set(r["id"] for r in e["results"])
    if want:
        recalls.append(sum(1 for r in a["results"] if r["id"] in want) / len(want))
p99 = lambda v: sorted(v)[int(0.99 * (len(v) - 1))]
rec = sum(recalls) / len(recalls)
print("approx-smoke: recall@10 %.3f, exact p99 %dus, approx p99 %dus" % (rec, p99(exact_us), p99(approx_us)))
assert rec >= 0.8, "recall %.3f below the 0.8 floor" % rec
assert p99(approx_us) < p99(exact_us), "approx p99 not below exact p99"
endef
export APPROX_SMOKE_PY
approx-smoke:
	$(GO) build -o /tmp/stpqd-smoke ./cmd/stpqd
	$(GO) build -o /tmp/stpqload-smoke ./cmd/stpqload
	/tmp/stpqd-smoke -synthetic -objects 3000 -features 12000 -index ir2 -signature-bits 8 \
		-page-size 1024 -buffer-pages 64 -cache -1 -addr $(APPROX_ADDR) & \
	pid=$$!; \
	trap 'kill -INT $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://$(APPROX_ADDR)/healthz >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	curl -fsS http://$(APPROX_ADDR)/healthz >/dev/null && \
	echo "$$APPROX_SMOKE_PY" | python3 - && \
	/tmp/stpqload-smoke -addr http://$(APPROX_ADDR) -c 4 -n 80 -k 5 -radius 0.01 -approx-frac 0.5 -recall 0.9 && \
	curl -fsS http://$(APPROX_ADDR)/metrics | grep -E 'stpq_approx_queries_total\{[^}]*\} [1-9]' && \
	curl -fsS http://$(APPROX_ADDR)/metrics | grep -E 'stpq_serve_approx_queries_total [1-9]' && \
	curl -fsS http://$(APPROX_ADDR)/debug/shapes | grep -q 'mode=approx' && \
	echo "approx-smoke: fast tier beats exact p99 at >=0.8 recall, counters visible" && \
	kill -INT $$pid && wait $$pid

check: build vet test race
