package stpq

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomObsDB builds a moderately sized random DB with a small buffer pool,
// so queries of every variant do real page I/O and evictions.
func randomObsDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	vocab := make([]string, 24)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("kw%02d", i)
	}
	pick := func(n int) []string {
		out := make([]string, 0, n)
		for _, j := range rng.Perm(len(vocab))[:n] {
			out = append(out, vocab[j])
		}
		return out
	}
	db := New(cfg)
	objs := make([]Object, 300)
	for i := range objs {
		objs[i] = Object{ID: int64(i + 1), X: rng.Float64(), Y: rng.Float64()}
	}
	db.AddObjects(objs)
	for _, name := range []string{"restaurants", "coffeehouses"} {
		feats := make([]Feature, 200)
		for i := range feats {
			feats[i] = Feature{
				ID:       int64(i + 1),
				X:        rng.Float64(),
				Y:        rng.Float64(),
				Score:    rng.Float64(),
				Keywords: pick(2 + rng.Intn(3)),
			}
		}
		db.AddFeatureSet(name, feats)
	}
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	return db
}

func obsQuery(alg Algorithm, v Variant) Query {
	return Query{
		K:      5,
		Radius: 0.15,
		Lambda: 0.5,
		Keywords: map[string][]string{
			"restaurants":  {"kw01", "kw05", "kw09"},
			"coffeehouses": {"kw02", "kw07", "kw11"},
		},
		Algorithm: alg,
		Variant:   v,
	}
}

// Every query, across both algorithms, all three variants and both index
// kinds, must satisfy LogicalReads ≥ PhysicalReads, and its trace root must
// account for exactly the query's page reads, with child spans never
// exceeding the root.
func TestReadInvariantsAndTraceAttribution(t *testing.T) {
	for _, kind := range []IndexKind{SRT, IR2} {
		db := randomObsDB(t, Config{IndexKind: kind, BufferPages: 8, Tracing: true})
		for _, alg := range []Algorithm{STPS, STDS} {
			for _, v := range []Variant{Range, Influence, NearestNeighbor} {
				name := fmt.Sprintf("kind=%v/alg=%d/variant=%d", kind, alg, v)
				_, stats, err := db.TopK(obsQuery(alg, v))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if stats.LogicalReads < stats.PhysicalReads {
					t.Errorf("%s: LogicalReads %d < PhysicalReads %d",
						name, stats.LogicalReads, stats.PhysicalReads)
				}
				if stats.LogicalReads == 0 {
					t.Errorf("%s: query did no page reads", name)
				}
				root := stats.Trace
				if root == nil {
					t.Fatalf("%s: tracing on but Stats.Trace is nil", name)
				}
				if root.PhysicalReads != stats.PhysicalReads {
					t.Errorf("%s: root span physical reads %d != stats %d",
						name, root.PhysicalReads, stats.PhysicalReads)
				}
				if root.LogicalReads != stats.LogicalReads {
					t.Errorf("%s: root span logical reads %d != stats %d",
						name, root.LogicalReads, stats.LogicalReads)
				}
				// A parent span is open while its children run, so each
				// span's reads must cover the sum of its children's.
				root.Walk(func(_ int, sp *Span) {
					var phy, log int64
					for _, c := range sp.Children {
						phy += c.PhysicalReads
						log += c.LogicalReads
					}
					if phy > sp.PhysicalReads || log > sp.LogicalReads {
						t.Errorf("%s: span %q children reads (%d/%d) exceed parent (%d/%d)",
							name, sp.Name, log, phy, sp.LogicalReads, sp.PhysicalReads)
					}
				})
			}
		}
	}
}

// Tracing off (the default) must leave Stats.Trace nil; SetTracing flips it
// both ways on a built DB.
func TestSetTracingToggles(t *testing.T) {
	db := paperDB(t, Config{})
	_, stats, err := db.TopK(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace != nil {
		t.Fatal("tracing off but Stats.Trace set")
	}
	db.SetTracing(true)
	_, stats, err = db.TopK(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace == nil {
		t.Fatal("tracing on but Stats.Trace nil")
	}
	if stats.Trace.Name != "stps.range" {
		t.Fatalf("root span %q, want stps.range", stats.Trace.Name)
	}
	if s := stats.Trace.String(); !strings.Contains(s, "stps.range") {
		t.Fatalf("trace rendering missing root: %q", s)
	}
	db.SetTracing(false)
	_, stats, err = db.TopK(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace != nil {
		t.Fatal("tracing disabled again but Stats.Trace set")
	}
}

// DB metrics must survive a JSON round trip unchanged and emit parseable
// Prometheus text.
func TestDBMetricsExport(t *testing.T) {
	db := paperDB(t, Config{})
	for _, alg := range []Algorithm{STPS, STDS} {
		if _, _, err := db.TopK(paperQuery(3, alg)); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Metrics()
	if snap.Counters[`stpq_queries_total{alg="stps",variant="range"}`] != 1 {
		t.Errorf("stps query counter = %d, want 1",
			snap.Counters[`stpq_queries_total{alg="stps",variant="range"}`])
	}
	if snap.Counters[`stpq_queries_total{alg="stds",variant="range"}`] != 1 {
		t.Errorf("stds query counter = %d, want 1",
			snap.Counters[`stpq_queries_total{alg="stds",variant="range"}`])
	}
	var poolHits int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "stpq_bufferpool_hits_total{") {
			poolHits += v
		}
	}
	if poolHits == 0 {
		t.Error("no buffer-pool hits recorded in metrics")
	}
	h, ok := snap.Histograms[`stpq_query_seconds{alg="stps",variant="range"}`]
	if !ok {
		t.Fatal("latency histogram missing")
	}
	if h.Count != 1 || len(h.Counts) != len(h.Bounds)+1 {
		t.Fatalf("histogram count %d, counts %d for %d bounds", h.Count, len(h.Counts), len(h.Bounds))
	}

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Error("metrics snapshot did not survive JSON round trip")
	}

	var buf bytes.Buffer
	if err := db.WriteMetricsPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE stpq_queries_total counter",
		`stpq_queries_total{alg="stps",variant="range"} 1`,
		`stpq_query_seconds_count{alg="stps",variant="range"} 1`,
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") < 1 {
			t.Errorf("malformed Prometheus line %q", line)
		}
	}
}

// Stats.HitRatio-style accounting at the DB level: a repeated query on a
// warm cache must hit the pool, so its physical reads drop to zero while
// logical reads stay put.
func TestWarmCacheReadsAccounted(t *testing.T) {
	db := paperDB(t, Config{})
	_, cold, err := db.TopK(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := db.TopK(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	if warm.LogicalReads != cold.LogicalReads {
		t.Errorf("warm logical reads %d != cold %d", warm.LogicalReads, cold.LogicalReads)
	}
	if warm.PhysicalReads != 0 {
		t.Errorf("warm query did %d physical reads, want 0", warm.PhysicalReads)
	}
}
