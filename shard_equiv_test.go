package stpq

import (
	"math/rand"
	"reflect"
	"testing"
)

// shardTestData builds deterministic random objects and two feature sets
// for the sharded-vs-single comparisons.
func shardTestData(seed int64) ([]Object, []Feature, []Feature, []string) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"pizza", "sushi", "tacos", "ramen", "bagels", "pho", "curry", "bbq",
		"espresso", "latte", "tea", "cocoa"}
	objs := make([]Object, 400)
	for i := range objs {
		objs[i] = Object{ID: int64(i), X: rng.Float64(), Y: rng.Float64()}
	}
	mk := func(n int) []Feature {
		feats := make([]Feature, n)
		for i := range feats {
			feats[i] = Feature{
				ID: int64(i), X: rng.Float64(), Y: rng.Float64(), Score: rng.Float64(),
				Keywords: []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]},
			}
		}
		return feats
	}
	return objs, mk(350), mk(300), words
}

func buildShardTestDB(t *testing.T, cfg Config, objs []Object, food, cafes []Feature) *DB {
	t.Helper()
	db := New(cfg)
	db.AddObjects(objs)
	db.AddFeatureSet("food", food)
	db.AddFeatureSet("cafes", cafes)
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestShardedDBMatchesSingle drives the sharded engine through the public
// DB API: for both index kinds, all three variants, both algorithms and
// several shard counts, results must be byte-identical (scores and order)
// to the unsharded build of the same data.
func TestShardedDBMatchesSingle(t *testing.T) {
	objs, food, cafes, words := shardTestData(7)
	for _, kind := range []IndexKind{SRT, IR2} {
		single := buildShardTestDB(t, Config{IndexKind: kind, PageSize: 1024}, objs, food, cafes)
		for _, shards := range []int{2, 4, 8} {
			strategy := ShardHilbert
			if shards == 4 {
				strategy = ShardGrid
			}
			sharded := buildShardTestDB(t, Config{
				IndexKind: kind, PageSize: 1024,
				ShardCount: shards, ShardStrategy: strategy, ShardParallelism: 2,
			}, objs, food, cafes)
			rng := rand.New(rand.NewSource(int64(shards)))
			for _, variant := range []Variant{Range, Influence, NearestNeighbor} {
				for _, alg := range []Algorithm{STPS, STDS} {
					q := Query{
						K: 8, Radius: 0.06, Lambda: 0.5,
						Keywords: map[string][]string{
							"food":  {words[rng.Intn(len(words))], words[rng.Intn(len(words))]},
							"cafes": {words[rng.Intn(len(words))]},
						},
						Variant: variant, Algorithm: alg,
					}
					want, _, err := single.TopK(q)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := sharded.TopK(q)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("kind %v shards %d %v: %d results, want %d", kind, shards, variant, len(got), len(want))
					}
					for i := range want {
						if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
							t.Fatalf("kind %v shards %d %v alg %v rank %d: got (%d, %v) want (%d, %v)",
								kind, shards, variant, alg, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
						}
					}
				}
			}
		}
	}
}

// TestShardedDBSurface checks the non-query surface of a sharded DB:
// snapshots, rebuild, metrics, save/open round trip and score oracle.
func TestShardedDBSurface(t *testing.T) {
	objs, food, cafes, _ := shardTestData(8)
	db := buildShardTestDB(t, Config{ShardCount: 4, PageSize: 1024}, objs, food, cafes)

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumObjects() != len(objs) {
		t.Fatalf("NumObjects %d, want %d", snap.NumObjects(), len(objs))
	}
	nf := snap.NumFeatures()
	if nf["food"] != len(food) || nf["cafes"] != len(cafes) {
		t.Fatalf("NumFeatures %v", nf)
	}
	if _, err := db.KeywordStats("food"); err != nil {
		t.Fatal(err)
	}
	q := Query{K: 5, Radius: 0.05, Lambda: 0.5,
		Keywords: map[string][]string{"food": {"pizza"}}}
	if _, err := db.Score(q, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.TopK(q); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Counters["stpq_shard_fanout_total"]+m.Counters["stpq_shard_pruned_total"] == 0 {
		t.Fatal("shard scatter counters missing from DB metrics")
	}
	// Save/open round trip: the reopened sharded DB must answer every
	// query identically to the engine that saved it.
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatalf("Save on sharded DB: %v", err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open on sharded save: %v", err)
	}
	for _, alg := range []Algorithm{STPS, STDS} {
		for _, v := range []Variant{Range, Influence, NearestNeighbor} {
			rq := q
			rq.Algorithm = alg
			rq.Variant = v
			want, _, err := db.TopK(rq)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := db2.TopK(rq)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("alg %v variant %v: reopened sharded DB diverges:\n got %v\nwant %v", alg, v, got, want)
			}
		}
	}
	if err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.TopK(q); err != nil {
		t.Fatal(err)
	}
}
