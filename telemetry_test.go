package stpq

// telemetry_test.go is the end-to-end check of the observability tentpole:
// request IDs propagating from the public Query through shard
// scatter-gather, core execution and the ingest overlay into event records
// and span trees; the slow-query log; EXPLAIN's prediction gating; and the
// WAL/ingest metrics.

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestEventLogRecordsEveryQuery(t *testing.T) {
	db := paperDB(t, Config{})
	for i := 0; i < 4; i++ {
		if _, _, err := db.TopK(paperQuery(3, STPS)); err != nil {
			t.Fatal(err)
		}
	}
	evs := db.RecentQueries(0)
	if len(evs) != 4 {
		t.Fatalf("RecentQueries = %d events, want 4", len(evs))
	}
	ev := evs[0]
	if ev.Algorithm != "stps" || ev.Variant != "range" || ev.K != 3 || ev.Outcome != "ok" {
		t.Errorf("event = %+v", ev)
	}
	if ev.Shape == "" || !strings.Contains(ev.Shape, "stps|range|") {
		t.Errorf("event shape = %q", ev.Shape)
	}
	if ev.Duration <= 0 {
		t.Errorf("event duration = %v", ev.Duration)
	}
	if ev.Seq <= evs[1].Seq {
		t.Errorf("events not newest-first: seq %d then %d", ev.Seq, evs[1].Seq)
	}
	if ev.Sampled || ev.Trace != nil {
		t.Errorf("unsampled query kept a trace: %+v", ev)
	}
	// Failed queries are recorded too, without polluting the shape table.
	shapes := len(db.QueryShapes())
	bad := paperQuery(3, STPS)
	bad.K = -1
	if _, _, err := db.TopK(bad); err == nil {
		t.Fatal("expected validation error")
	}
	// Validation failures never reach the engine; force an engine-level
	// error instead via an unknown feature set in Keywords.
	bad = paperQuery(3, STPS)
	bad.Keywords["nope"] = []string{"x"}
	if _, _, err := db.TopK(bad); err == nil {
		t.Fatal("expected unknown-set error")
	}
	if got := len(db.QueryShapes()); got != shapes {
		t.Errorf("error grew the shape table: %d -> %d", shapes, got)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(3, STPS)
	q.RequestID = "req-e2e-unsharded"
	q.Trace = TraceOn
	_, st, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace == nil || st.Trace.RequestID != q.RequestID {
		t.Fatalf("stats trace request id = %+v", st.Trace)
	}
	ev := db.RecentQueries(1)[0]
	if ev.RequestID != q.RequestID {
		t.Errorf("event request id = %q", ev.RequestID)
	}
	if !ev.Sampled || ev.Trace == nil || ev.Trace.RequestID != q.RequestID {
		t.Errorf("event trace = %+v", ev.Trace)
	}
}

func TestRequestIDPropagationSharded(t *testing.T) {
	db := paperDB(t, Config{ShardCount: 2})
	q := paperQuery(3, STPS)
	q.RequestID = "req-e2e-sharded"
	q.Trace = TraceOn
	_, st, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace == nil || st.Trace.RequestID != q.RequestID {
		t.Fatalf("stats trace request id = %+v", st.Trace)
	}
	if st.ShardFanout < 1 || st.ShardFanout+st.ShardPruned != 2 {
		t.Errorf("stats fanout/pruned = %d/%d", st.ShardFanout, st.ShardPruned)
	}
	ev := db.RecentQueries(1)[0]
	if ev.RequestID != q.RequestID || ev.Trace == nil || ev.Trace.RequestID != q.RequestID {
		t.Errorf("sharded event = req %q trace %+v", ev.RequestID, ev.Trace)
	}
	// The merged event carries the scatter-gather counters: this is the
	// shard-level view joining the same request ID.
	if ev.ShardFanout != st.ShardFanout || ev.ShardPruned != st.ShardPruned {
		t.Errorf("event fanout/pruned = %d/%d, stats %d/%d",
			ev.ShardFanout, ev.ShardPruned, st.ShardFanout, st.ShardPruned)
	}
}

func TestRequestIDPropagationThroughOverlay(t *testing.T) {
	db := paperDB(t, Config{WALDir: t.TempDir()})
	// Push the DB onto the ingest overlay: queries now run base + delta.
	if err := db.Apply([]Mutation{{
		Op: OpUpsertObject, Object: &Object{ID: 99, X: 0.6, Y: 0.55},
	}}); err != nil {
		t.Fatal(err)
	}
	if db.PendingOps() == 0 {
		t.Fatal("mutation did not land in the delta")
	}
	q := paperQuery(3, STPS)
	q.RequestID = "req-e2e-overlay"
	q.Trace = TraceOn
	_, st, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace == nil || st.Trace.RequestID != q.RequestID {
		t.Fatalf("overlay stats trace = %+v", st.Trace)
	}
	ev := db.RecentQueries(1)[0]
	if ev.RequestID != q.RequestID || ev.Trace == nil || ev.Trace.RequestID != q.RequestID {
		t.Errorf("overlay event = req %q trace %+v", ev.RequestID, ev.Trace)
	}
}

func TestSlowQueryCapture(t *testing.T) {
	// A 1ns threshold forces every query over the line: each must land in
	// the slow log with a complete span tree despite sampling being off.
	db := paperDB(t, Config{SlowQueryThreshold: time.Nanosecond})
	if _, _, err := db.TopK(paperQuery(3, STPS)); err != nil {
		t.Fatal(err)
	}
	slow := db.SlowQueries(0)
	if len(slow) != 1 {
		t.Fatalf("slow log holds %d events, want 1", len(slow))
	}
	ev := slow[0]
	if !ev.Slow || ev.Trace == nil {
		t.Fatalf("slow event lacks its trace: %+v", ev)
	}
	if ev.Sampled {
		t.Error("slow-only capture must not claim a sampling hit")
	}
	// The regular event log carries the same record.
	if recent := db.RecentQueries(1)[0]; !recent.Slow || recent.Trace == nil {
		t.Errorf("event-log copy lost the slow capture: %+v", recent)
	}
}

func TestSlowThresholdKeepsFastQueriesLean(t *testing.T) {
	// With a threshold no real query crosses, traces are collected
	// provisionally but must be trimmed from both the event record and the
	// query's public Stats.
	db := paperDB(t, Config{SlowQueryThreshold: time.Hour})
	_, st, err := db.TopK(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace != nil {
		t.Errorf("provisional trace leaked into Stats: %+v", st.Trace)
	}
	ev := db.RecentQueries(1)[0]
	if ev.Slow || ev.Sampled || ev.Trace != nil {
		t.Errorf("provisional trace leaked into the event: %+v", ev)
	}
	if n := len(db.SlowQueries(0)); n != 0 {
		t.Errorf("fast query reached the slow log: %d entries", n)
	}
}

func TestTraceSampling(t *testing.T) {
	db := paperDB(t, Config{TraceSampleRate: 1})
	_, st, err := db.TopK(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace == nil {
		t.Fatal("rate-1 sampling left Stats without a trace")
	}
	ev := db.RecentQueries(1)[0]
	if !ev.Sampled || ev.Trace == nil {
		t.Errorf("rate-1 sampling left the event unsampled: %+v", ev)
	}
	// TraceOff wins over the sampler.
	q := paperQuery(3, STPS)
	q.Trace = TraceOff
	_, st, err = db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace != nil || db.RecentQueries(1)[0].Trace != nil {
		t.Error("TraceOff query still collected a trace")
	}
}

func TestExplainPredictionGating(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(3, STPS)

	ex, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Algorithm != "stps" || ex.Variant != "range" || ex.Index != "srt" {
		t.Errorf("explain header = %+v", ex)
	}
	if ex.KeywordSets != 2 || ex.FeatureSets != 2 {
		t.Errorf("keyword sets = %d/%d", ex.KeywordSets, ex.FeatureSets)
	}
	if ex.Predicted != nil || ex.Samples != 0 {
		t.Errorf("cold explain predicted %+v from %d samples", ex.Predicted, ex.Samples)
	}
	if s := ex.String(); !strings.Contains(s, "insufficient samples (0 recorded") {
		t.Errorf("cold render:\n%s", s)
	}

	// One short of the floor: still gated, but the samples are counted.
	for i := 0; i < MinPredictSamples-1; i++ {
		if _, _, err := db.TopK(q); err != nil {
			t.Fatal(err)
		}
	}
	if ex, err = db.Explain(q); err != nil {
		t.Fatal(err)
	}
	if ex.Predicted != nil || ex.Samples != int64(MinPredictSamples-1) {
		t.Errorf("below floor: predicted %+v from %d samples", ex.Predicted, ex.Samples)
	}

	// At the floor the prediction appears, fed by the recorded executions.
	if _, _, err := db.TopK(q); err != nil {
		t.Fatal(err)
	}
	if ex, err = db.Explain(q); err != nil {
		t.Fatal(err)
	}
	if ex.Predicted == nil || ex.Predicted.Samples != int64(MinPredictSamples) {
		t.Fatalf("at floor: predicted %+v", ex.Predicted)
	}
	if ex.Predicted.MeanDuration <= 0 || ex.Predicted.MeanLogicalReads <= 0 {
		t.Errorf("prediction means = %+v", ex.Predicted)
	}
	if s := ex.String(); !strings.Contains(s, "predicted (from 3 samples)") {
		t.Errorf("warm render:\n%s", s)
	}
	// Explain itself must not run the query or count as a sample.
	if ex2, _ := db.Explain(q); ex2.Samples != ex.Samples {
		t.Errorf("Explain consumed samples: %d -> %d", ex.Samples, ex2.Samples)
	}
}

func TestExplainShardedPlan(t *testing.T) {
	db := paperDB(t, Config{ShardCount: 2})
	ex, err := db.Explain(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Shards) != 2 || ex.Parallelism < 1 {
		t.Fatalf("sharded plan = %+v", ex)
	}
	// Scatter order: bounds non-increasing, waves assigned from the order.
	for i := 1; i < len(ex.Shards); i++ {
		if ex.Shards[i].Bound > ex.Shards[i-1].Bound {
			t.Errorf("scatter order broken at %d: %+v", i, ex.Shards)
		}
		if ex.Shards[i].Wave < ex.Shards[i-1].Wave {
			t.Errorf("waves out of order at %d: %+v", i, ex.Shards)
		}
	}
	if s := ex.String(); !strings.Contains(s, "scatter-gather over 2 shards") {
		t.Errorf("sharded render:\n%s", s)
	}
}

func TestWALAndDeltaMetrics(t *testing.T) {
	db := paperDB(t, Config{WALDir: t.TempDir()})
	// Two Apply calls: each batch is one durable WAL record.
	for i, mut := range []Mutation{
		{Op: OpUpsertObject, Object: &Object{ID: 90, X: 0.2, Y: 0.2}},
		{Op: OpUpsertObject, Object: &Object{ID: 91, X: 0.3, Y: 0.3}},
	} {
		if err := db.Apply([]Mutation{mut}); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	m := db.Metrics()
	if n := m.Counters["stpq_wal_appends_total"]; n != 2 {
		t.Errorf("wal appends = %d, want 2", n)
	}
	if b := m.Counters["stpq_wal_bytes_total"]; b <= 0 {
		t.Errorf("wal bytes = %d", b)
	}
	if f := m.Histograms["stpq_ingest_wal_fsync_seconds"]; f.Count < 1 {
		t.Errorf("fsync histogram count = %d", f.Count)
	}
	if g := m.Gauges["stpq_ingest_delta_objects"]; g != 2 {
		t.Errorf("delta objects gauge = %v", g)
	}
	// A merge empties the delta and zeroes the gauge.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if g := db.Metrics().Gauges["stpq_ingest_delta_objects"]; g != 0 {
		t.Errorf("delta gauge after flush = %v", g)
	}
}

func TestShapeStatsInPrometheusExport(t *testing.T) {
	db := paperDB(t, Config{})
	for i := 0; i < 3; i++ {
		if _, _, err := db.TopK(paperQuery(3, STPS)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.WriteMetricsPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `stpq_shape_queries_total{shape="stps|range|jaccard|`) {
		t.Errorf("/metrics missing shape stats:\n%s", out)
	}
}
