package stpq

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stpq/internal/core"
	"stpq/internal/index"
)

// dbManifest is the on-disk description of a saved DB.
type dbManifest struct {
	Version  int          `json:"version"`
	Config   Config       `json:"config"`
	Vocab    []string     `json:"vocab"`
	SetNames []string     `json:"setNames"`
	Objects  index.Meta   `json:"objects"`
	Features []index.Meta `json:"features"`
}

const manifestName = "stpq.json"

// Save writes the built DB to a directory: one page dump per index plus a
// JSON manifest. The directory is created if needed. Signature-mode DBs
// (Config.SignatureBits > 0) cannot be saved yet.
//
// Together with Open, Save makes index construction a one-off cost: a
// 100K-feature SRT-index reopens in milliseconds.
func (db *DB) Save(dir string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.built {
		return errors.New("stpq: Save before Build")
	}
	if db.cfg.SignatureBits > 0 {
		return index.ErrSignaturePersist
	}
	eng, ok := db.engine.(*core.Engine)
	if !ok {
		return errors.New("stpq: sharded DBs cannot be saved; rebuild with ShardCount 0 first")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stpq: save: %w", err)
	}
	man := dbManifest{
		Version:  1,
		Config:   db.cfg,
		Vocab:    db.vocab.Words(),
		SetNames: db.setNames,
	}
	var err error
	man.Objects, err = saveIndex(filepath.Join(dir, "objects.pages"), eng.Objects().Save)
	if err != nil {
		return err
	}
	for i, g := range eng.FeatureGroups() {
		// Unsharded engines always hold single-part groups.
		meta, err := saveIndex(filepath.Join(dir, fmt.Sprintf("features_%d.pages", i)), g.Part(0).Save)
		if err != nil {
			return err
		}
		man.Features = append(man.Features, meta)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("stpq: save manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
		return fmt.Errorf("stpq: save manifest: %w", err)
	}
	return nil
}

// saveIndex dumps one index's pages to a file.
func saveIndex(path string, dump func(w io.Writer) (index.Meta, error)) (index.Meta, error) {
	f, err := os.Create(path)
	if err != nil {
		return index.Meta{}, fmt.Errorf("stpq: save %s: %w", path, err)
	}
	meta, err := dump(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return index.Meta{}, fmt.Errorf("stpq: save %s: %w", path, err)
	}
	return meta, nil
}

// Open loads a DB previously written by Save. The returned DB is ready to
// query; it does not retain the raw object/feature slices, so
// AddObjects/AddFeatureSet/Build must not be called on it.
func Open(dir string) (*DB, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("stpq: open: %w", err)
	}
	var man dbManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("stpq: open manifest: %w", err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("stpq: unsupported manifest version %d", man.Version)
	}
	if len(man.Features) != len(man.SetNames) {
		return nil, fmt.Errorf("stpq: manifest has %d feature metas for %d set names",
			len(man.Features), len(man.SetNames))
	}
	if man.Config.ShardCount > 1 {
		return nil, fmt.Errorf("stpq: manifest requests %d shards, but saved DBs are single-engine", man.Config.ShardCount)
	}
	db := New(man.Config)
	for _, w := range man.Vocab {
		db.vocab.Intern(w)
	}
	db.setNames = man.SetNames
	for _, name := range man.SetNames {
		db.sets[name] = nil // names registered; raw features not retained
	}
	buffer := man.Config.BufferPages

	oidx, err := openIndex(filepath.Join(dir, "objects.pages"), man.Objects, buffer, index.OpenObjectIndex)
	if err != nil {
		return nil, err
	}
	fidxs := make([]*index.FeatureIndex, len(man.Features))
	for i, meta := range man.Features {
		fidxs[i], err = openIndex(filepath.Join(dir, fmt.Sprintf("features_%d.pages", i)), meta, buffer, index.OpenFeatureIndex)
		if err != nil {
			return nil, err
		}
	}
	oidx.AttachMetrics(db.metrics, "objects")
	for i, name := range man.SetNames {
		fidxs[i].AttachMetrics(db.metrics, poolLabel(name))
	}
	db.engine, err = core.NewEngine(oidx, fidxs, man.Config.coreOptions(db.metrics))
	if err != nil {
		return nil, err
	}
	db.built = true
	db.gen = 1
	return db, nil
}

// openIndex loads one index dump.
func openIndex[T any](path string, meta index.Meta, buffer int, open func(r io.Reader, meta index.Meta, buffer int) (T, error)) (T, error) {
	var zero T
	f, err := os.Open(path)
	if err != nil {
		return zero, fmt.Errorf("stpq: open %s: %w", path, err)
	}
	defer f.Close()
	idx, err := open(f, meta, buffer)
	if err != nil {
		return zero, fmt.Errorf("stpq: open %s: %w", path, err)
	}
	return idx, nil
}
