package stpq

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stpq/internal/core"
	"stpq/internal/index"
	"stpq/internal/ingest"
	"stpq/internal/obs"
	"stpq/internal/shard"
)

// dbManifest is the on-disk description of a saved DB.
type dbManifest struct {
	Version  int          `json:"version"`
	Config   Config       `json:"config"`
	Vocab    []string     `json:"vocab"`
	SetNames []string     `json:"setNames"`
	Objects  index.Meta   `json:"objects"`
	Features []index.Meta `json:"features"`
	// AppliedSeq is the WAL sequence number this snapshot is current
	// through: replay after Open starts at AppliedSeq+1.
	AppliedSeq uint64 `json:"appliedSeq,omitempty"`
	// FileGen, when non-zero, stamps the page-dump file names
	// ("objects.<FileGen hex>.pages"), so a checkpoint never overwrites
	// the files the previous manifest points at: the new files land
	// first, the manifest rename flips the generation atomically, and a
	// crash in between leaves the old checkpoint fully intact. Zero means
	// the legacy unstamped names.
	FileGen uint64 `json:"fileGen,omitempty"`
}

const manifestName = "stpq.json"

// shapesName is the serialized per-shape cost statistics alongside a saved
// DB: the planner's and EXPLAIN's memory, reloaded on Open so predictions
// are warm from boot instead of cold for the first MinPredictSamples
// queries of every shape.
const shapesName = "shapes.json"

// SaveShapes writes the DB's per-shape cost statistics to dir (created if
// needed). Save and Checkpoint call it automatically; cmd/stpqd also calls
// it on graceful shutdown so a restart keeps the planner warm. Safe to
// call concurrently with queries — the statistics table is lock-protected
// and never replaced after New.
func (db *DB) SaveShapes(dir string) error {
	recs := db.tel.Shapes.Export()
	if len(recs) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stpq: save shapes: %w", err)
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return fmt.Errorf("stpq: save shapes: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, shapesName), data, 0o644); err != nil {
		return fmt.Errorf("stpq: save shapes: %w", err)
	}
	return nil
}

// loadShapes merges a saved shape-statistics file into the DB's table. A
// missing file is not an error (older snapshots have none); a corrupt one
// is — silently dropping the planner's memory would be invisible.
func (db *DB) loadShapes(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, shapesName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("stpq: load shapes: %w", err)
	}
	var recs []obs.ShapeRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return fmt.Errorf("stpq: load shapes: %w", err)
	}
	db.tel.Shapes.Import(recs)
	return nil
}

// Save writes the built DB to a directory: one page dump per index plus a
// JSON manifest. Sharded DBs persist their sub-engines and partitioning
// alongside. The directory is created if needed. Signature-mode DBs
// (Config.SignatureBits > 0) cannot be saved yet, and a DB with unmerged
// live-ingest mutations must Flush or Checkpoint first.
//
// Together with Open, Save makes index construction a one-off cost: a
// 100K-feature SRT-index reopens in milliseconds.
func (db *DB) Save(dir string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.built {
		return errors.New("stpq: Save before Build")
	}
	if db.cfg.SignatureBits > 0 {
		return index.ErrSignaturePersist
	}
	eng, ok := db.engine.(*core.Engine)
	if !ok {
		if _, overlay := db.engine.(*ingest.Overlay); overlay {
			return errors.New("stpq: unmerged mutations pending; call Flush or Checkpoint instead of Save")
		}
		return db.saveShardedLocked(dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stpq: save: %w", err)
	}
	man := dbManifest{
		Version:    1,
		Config:     db.cfg,
		Vocab:      db.vocab.Words(),
		SetNames:   db.setNames,
		AppliedSeq: db.walSeq,
	}
	var err error
	man.Objects, err = saveIndex(filepath.Join(dir, "objects.pages"), eng.Objects().Save)
	if err != nil {
		return err
	}
	for i, g := range eng.FeatureGroups() {
		// Unsharded engines always hold single-part groups.
		meta, err := saveIndex(filepath.Join(dir, fmt.Sprintf("features_%d.pages", i)), g.Part(0).Save)
		if err != nil {
			return err
		}
		man.Features = append(man.Features, meta)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("stpq: save manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestName), data); err != nil {
		return fmt.Errorf("stpq: save manifest: %w", err)
	}
	return db.SaveShapes(dir)
}

// saveShardedLocked persists a sharded DB: the top-level manifest carries
// the config, vocabulary and set names as usual, and the shard package
// writes the per-shard sub-indexes plus the partitioning metadata
// alongside it. Callers hold db.mu.
func (db *DB) saveShardedLocked(dir string) error {
	eng, ok := db.engine.(*shard.Engine)
	if !ok {
		return fmt.Errorf("stpq: cannot save engine of type %T", db.engine)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stpq: save: %w", err)
	}
	man := dbManifest{
		Version:    1,
		Config:     db.cfg,
		Vocab:      db.vocab.Words(),
		SetNames:   db.setNames,
		AppliedSeq: db.walSeq,
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("stpq: save manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
		return fmt.Errorf("stpq: save manifest: %w", err)
	}
	if err := eng.Save(dir); err != nil {
		return err
	}
	return db.SaveShapes(dir)
}

// openSharded restores a DB saved by saveShardedLocked.
func openSharded(dir string, man dbManifest) (*DB, error) {
	if man.Config.WALDir != "" {
		return nil, errors.New("stpq: sharded DBs do not support a WAL")
	}
	db := New(man.Config)
	for _, w := range man.Vocab {
		db.vocab.Intern(w)
	}
	db.setNames = man.SetNames
	for _, name := range man.SetNames {
		db.sets[name] = nil // names registered; raw features not retained
	}
	eng, err := shard.Open(dir, shard.Options{
		Shards:      man.Config.ShardCount,
		Strategy:    shard.Strategy(man.Config.ShardStrategy),
		Parallelism: man.Config.ShardParallelism,
		Index: index.Options{
			Kind:        index.Kind(man.Config.IndexKind),
			VocabWidth:  db.vocab.Size(),
			PageSize:    man.Config.PageSize,
			BufferPages: man.Config.BufferPages,
			PoolStripes: man.Config.PoolStripes,
		},
		Core:      man.Config.coreOptions(nil, nil),
		Metrics:   db.metrics,
		Telemetry: db.tel,
	})
	if err != nil {
		return nil, err
	}
	if got := len(eng.FeatureGroups()); got != len(man.SetNames) {
		return nil, fmt.Errorf("stpq: shard manifest has %d feature groups for %d set names", got, len(man.SetNames))
	}
	for i, name := range man.SetNames {
		eng.FeatureGroups()[i].AttachMetrics(db.metrics, poolLabel(name))
	}
	db.engine = eng
	db.built = true
	db.gen = 1
	db.walSeq = man.AppliedSeq
	db.appliedSeq = man.AppliedSeq
	if err := db.loadShapes(dir); err != nil {
		return nil, err
	}
	return db, nil
}

// pageFile returns the page-dump file name for an index under a file
// generation (0 = the legacy unstamped name written by Save).
func pageFile(base string, gen uint64) string {
	if gen == 0 {
		return base + ".pages"
	}
	return fmt.Sprintf("%s.%016x.pages", base, gen)
}

// writeFileAtomic writes data to path via a temp file and rename, so
// readers (and crash recovery) see either the old contents or the new,
// never a torn write.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ckptPin is the state a Checkpoint captures under the DB locks: the
// merged engine (whose pages are immutable by construction — later
// partial merges write only copy-on-write overlays over them) plus the
// metadata the manifest needs. save then streams it to disk with no DB
// locks held.
type ckptPin struct {
	eng      *core.Engine
	cfg      Config
	vocab    []string
	setNames []string
	seq      uint64
}

// pinCheckpointLocked captures the current merged generation for a
// lock-free checkpoint save. Callers hold ingestMu and db.mu and have
// already merged every pending generation, so db.engine is the base.
func (db *DB) pinCheckpointLocked(seq uint64) (*ckptPin, error) {
	if db.cfg.SignatureBits > 0 {
		return nil, index.ErrSignaturePersist
	}
	eng, ok := db.engine.(*core.Engine)
	if !ok {
		return nil, fmt.Errorf("stpq: checkpoint requires an unsharded, fully merged engine (have %T)", db.engine)
	}
	names := make([]string, len(db.setNames))
	copy(names, db.setNames)
	return &ckptPin{
		eng:      eng,
		cfg:      db.cfg,
		vocab:    db.vocab.Words(),
		setNames: names,
		seq:      seq,
	}, nil
}

// save writes the pinned generation to dir atomically: page dumps land
// under names stamped with the WAL sequence, the manifest is renamed into
// place last, and page files no manifest references any more are garbage
// collected afterwards. A crash at any point leaves the directory opening
// to a consistent checkpoint (the previous one until the manifest rename,
// this one after).
func (p *ckptPin) save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stpq: checkpoint: %w", err)
	}
	fileGen := p.seq
	if fileGen == 0 {
		// A checkpoint before any WAL append still gets a stamped (and
		// therefore atomically replaceable) file generation.
		fileGen = 1
	}
	man := dbManifest{
		Version:    1,
		Config:     p.cfg,
		Vocab:      p.vocab,
		SetNames:   p.setNames,
		AppliedSeq: p.seq,
		FileGen:    fileGen,
	}
	keep := map[string]bool{}
	var err error
	name := pageFile("objects", fileGen)
	keep[name] = true
	man.Objects, err = saveIndex(filepath.Join(dir, name), p.eng.Objects().Save)
	if err != nil {
		return err
	}
	for i, g := range p.eng.FeatureGroups() {
		// A merged engine always holds single-part groups.
		name = pageFile(fmt.Sprintf("features_%d", i), fileGen)
		keep[name] = true
		meta, err := saveIndex(filepath.Join(dir, name), g.Part(0).Save)
		if err != nil {
			return err
		}
		man.Features = append(man.Features, meta)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("stpq: checkpoint manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestName), data); err != nil {
		return fmt.Errorf("stpq: checkpoint manifest: %w", err)
	}
	gcPageFiles(dir, keep)
	return nil
}

// gcPageFiles removes page dumps of superseded checkpoint generations.
// Best-effort: a leftover file wastes disk but harms nothing, so errors
// are ignored (the next checkpoint retries).
func gcPageFiles(dir string, keep map[string]bool) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.pages"))
	if err != nil {
		return
	}
	for _, path := range matches {
		if !keep[filepath.Base(path)] {
			os.Remove(path)
		}
	}
}

// saveIndex dumps one index's pages to a file.
func saveIndex(path string, dump func(w io.Writer) (index.Meta, error)) (index.Meta, error) {
	f, err := os.Create(path)
	if err != nil {
		return index.Meta{}, fmt.Errorf("stpq: save %s: %w", path, err)
	}
	meta, err := dump(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return index.Meta{}, fmt.Errorf("stpq: save %s: %w", path, err)
	}
	return meta, nil
}

// Open loads a DB previously written by Save. The returned DB is ready to
// query; it does not retain the raw object/feature slices, so
// AddObjects/AddFeatureSet/Build must not be called on it.
func Open(dir string) (*DB, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("stpq: open: %w", err)
	}
	var man dbManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("stpq: open manifest: %w", err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("stpq: unsupported manifest version %d", man.Version)
	}
	if man.Config.ShardCount > 1 {
		return openSharded(dir, man)
	}
	if len(man.Features) != len(man.SetNames) {
		return nil, fmt.Errorf("stpq: manifest has %d feature metas for %d set names",
			len(man.Features), len(man.SetNames))
	}
	db := New(man.Config)
	for _, w := range man.Vocab {
		db.vocab.Intern(w)
	}
	db.setNames = man.SetNames
	for _, name := range man.SetNames {
		db.sets[name] = nil // names registered; raw features not retained
	}
	buffer := man.Config.BufferPages

	oidx, err := openIndex(filepath.Join(dir, pageFile("objects", man.FileGen)), man.Objects, buffer, index.OpenObjectIndex)
	if err != nil {
		return nil, err
	}
	fidxs := make([]*index.FeatureIndex, len(man.Features))
	for i, meta := range man.Features {
		fidxs[i], err = openIndex(filepath.Join(dir, pageFile(fmt.Sprintf("features_%d", i), man.FileGen)), meta, buffer, index.OpenFeatureIndex)
		if err != nil {
			return nil, err
		}
	}
	oidx.AttachMetrics(db.metrics, "objects")
	for i, name := range man.SetNames {
		fidxs[i].AttachMetrics(db.metrics, poolLabel(name))
	}
	eng, err := core.NewEngine(oidx, fidxs, man.Config.coreOptions(db.metrics, db.tel))
	if err != nil {
		return nil, err
	}
	db.engine = eng
	db.base = eng
	db.built = true
	db.gen = 1
	db.walSeq = man.AppliedSeq
	db.appliedSeq = man.AppliedSeq
	if err := db.loadShapes(dir); err != nil {
		return nil, err
	}
	if man.Config.WALDir != "" {
		if _, err := db.AttachWAL(man.Config.WALDir); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// openIndex loads one index dump.
func openIndex[T any](path string, meta index.Meta, buffer int, open func(r io.Reader, meta index.Meta, buffer int) (T, error)) (T, error) {
	var zero T
	f, err := os.Open(path)
	if err != nil {
		return zero, fmt.Errorf("stpq: open %s: %w", path, err)
	}
	defer f.Close()
	idx, err := open(f, meta, buffer)
	if err != nil {
		return zero, fmt.Errorf("stpq: open %s: %w", path, err)
	}
	return idx, nil
}
