// Benchmarks: one testing.B benchmark per table/figure of the paper's
// evaluation (Section 8), at a reduced default scale so `go test -bench=.`
// completes in minutes. The cmd/stpqbench harness runs the same sweeps at
// full paper scale and prints the paper-style rows; these benchmarks give
// allocation counts and per-query latency for regression tracking.
//
// Sub-benchmark names follow the paper's panels, e.g.
// BenchmarkFig7/a_features=20000/SRT.
package stpq

import (
	"fmt"
	"sync"
	"testing"

	"stpq/internal/core"
	"stpq/internal/datagen"
	"stpq/internal/index"
	"stpq/internal/obs"
)

// benchScale shrinks the paper's 100K default to keep bench runs short.
const (
	benchObjects  = 20_000
	benchFeatures = 20_000
	benchVocab    = 128
	benchClusters = 2_000
	benchQueries  = 64 // pre-generated workload, cycled by b.N
)

// fixtureKey identifies a cached dataset+engine combination.
type fixtureKey struct {
	objects, features, sets, vocab int
	kind                           index.Kind
	real                           bool
}

var (
	fixtureMu sync.Mutex
	fixtures  = map[fixtureKey]*core.Engine{}
	datasetMu sync.Mutex
	datasets  = map[fixtureKey]*datagen.Dataset{}
)

// benchDataset returns a cached dataset for the key (kind ignored).
func benchDataset(b *testing.B, key fixtureKey) *datagen.Dataset {
	b.Helper()
	datasetMu.Lock()
	defer datasetMu.Unlock()
	dk := key
	dk.kind = 0
	if ds, ok := datasets[dk]; ok {
		return ds
	}
	var ds *datagen.Dataset
	if key.real {
		ds = datagen.RealLike(datagen.RealLikeConfig{
			Hotels: key.objects, Restaurants: key.features, Seed: 1,
		})
	} else {
		ds = datagen.Synthetic(datagen.SyntheticConfig{
			Objects: key.objects, FeaturesPerSet: key.features, FeatureSets: key.sets,
			Vocab: key.vocab, Clusters: benchClusters, Seed: 1,
		})
	}
	datasets[dk] = ds
	return ds
}

// benchEngine returns a cached engine for the key.
func benchEngine(b *testing.B, key fixtureKey) *core.Engine {
	b.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if e, ok := fixtures[key]; ok {
		return e
	}
	ds := benchDataset(b, key)
	opts := index.Options{Kind: key.kind, VocabWidth: ds.VocabWidth, BufferPages: 256}
	oidx, err := index.BuildObjectIndex(ds.Objects, opts)
	if err != nil {
		b.Fatal(err)
	}
	fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
	for i, fs := range ds.FeatureSets {
		if fidxs[i], err = index.BuildFeatureIndex(fs, opts); err != nil {
			b.Fatal(err)
		}
	}
	// Telemetry at the default (unsampled) rate so the benchmarks measure
	// the event-log hot path every production query pays.
	e, err := core.NewEngine(oidx, fidxs, core.Options{
		BatchSTDS: true,
		Telemetry: obs.NewTelemetry(0, 0, 0, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	fixtures[key] = e
	return e
}

// synKey builds a synthetic fixture key with defaults.
func synKey(kind index.Kind) fixtureKey {
	return fixtureKey{objects: benchObjects, features: benchFeatures, sets: 2, vocab: benchVocab, kind: kind}
}

// realKey builds the real-surrogate fixture key (quarter of paper scale).
func realKey(kind index.Kind) fixtureKey {
	return fixtureKey{objects: 6_250, features: 19_750, sets: 1, kind: kind, real: true}
}

// runQueries cycles a pre-generated workload for b.N iterations.
func runQueries(b *testing.B, e *core.Engine, alg string, qs []core.Query) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		var err error
		if alg == "stds" {
			_, _, err = e.STDS(q)
		} else {
			_, _, err = e.STPS(q)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// qc builds a query config with the default bench parameters.
func qc(variant core.Variant) datagen.QueryConfig {
	return datagen.QueryConfig{K: 10, Radius: 0.01, Lambda: 0.5, NumKeywords: 3, Variant: variant, Seed: 2}
}

// forKinds runs the body once per index kind.
func forKinds(b *testing.B, fn func(b *testing.B, kind index.Kind)) {
	for _, kind := range []index.Kind{index.SRT, index.IR2} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) { fn(b, kind) })
	}
}

// BenchmarkTable3 measures STDS (the baseline scan) at the default data
// point of Table 3 on both indexes.
func BenchmarkTable3(b *testing.B) {
	forKinds(b, func(b *testing.B, kind index.Kind) {
		key := synKey(kind)
		e := benchEngine(b, key)
		qs := benchDataset(b, key).GenQueries(benchQueries, qc(core.RangeScore))
		runQueries(b, e, "stds", qs)
	})
}

// BenchmarkFig7 sweeps the dataset parameters of Figure 7 with STPS
// (range score, synthetic).
func BenchmarkFig7(b *testing.B) {
	for _, f := range []int{10_000, 20_000, 40_000} {
		f := f
		b.Run(fmt.Sprintf("a_features=%d", f), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				key.features = f
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, qc(core.RangeScore))
				runQueries(b, e, "stps", qs)
			})
		})
	}
	for _, o := range []int{10_000, 20_000, 40_000} {
		o := o
		b.Run(fmt.Sprintf("b_objects=%d", o), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				key.objects = o
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, qc(core.RangeScore))
				runQueries(b, e, "stps", qs)
			})
		})
	}
	for _, c := range []int{2, 3, 4} {
		c := c
		b.Run(fmt.Sprintf("c_sets=%d", c), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				key.sets = c
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, qc(core.RangeScore))
				runQueries(b, e, "stps", qs)
			})
		})
	}
	for _, w := range []int{64, 128, 256} {
		w := w
		b.Run(fmt.Sprintf("d_vocab=%d", w), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				key.vocab = w
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, qc(core.RangeScore))
				runQueries(b, e, "stps", qs)
			})
		})
	}
}

// BenchmarkFig8 sweeps the query parameters of Figure 8 on the real
// surrogate (range score).
func BenchmarkFig8(b *testing.B) {
	for _, r := range []float64{0.005, 0.01, 0.04} {
		r := r
		b.Run(fmt.Sprintf("a_radius=%v", r), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := realKey(kind)
				cfg := qc(core.RangeScore)
				cfg.Radius = r
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, cfg)
				runQueries(b, e, "stps", qs)
			})
		})
	}
	for _, k := range []int{5, 10, 40} {
		k := k
		b.Run(fmt.Sprintf("b_k=%d", k), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := realKey(kind)
				cfg := qc(core.RangeScore)
				cfg.K = k
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, cfg)
				runQueries(b, e, "stps", qs)
			})
		})
	}
	for _, l := range []float64{0.1, 0.5, 0.9} {
		l := l
		b.Run(fmt.Sprintf("c_lambda=%v", l), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := realKey(kind)
				cfg := qc(core.RangeScore)
				cfg.Lambda = l
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, cfg)
				runQueries(b, e, "stps", qs)
			})
		})
	}
	for _, n := range []int{1, 3, 9} {
		n := n
		b.Run(fmt.Sprintf("d_qkw=%d", n), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := realKey(kind)
				cfg := qc(core.RangeScore)
				cfg.NumKeywords = n
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, cfg)
				runQueries(b, e, "stps", qs)
			})
		})
	}
}

// BenchmarkFig9 sweeps the query parameters of Figure 9 on synthetic data
// (range score).
func BenchmarkFig9(b *testing.B) {
	sweeps := []struct {
		name string
		cfg  datagen.QueryConfig
	}{
		{"a_radius=0.005", withRadius(qc(core.RangeScore), 0.005)},
		{"a_radius=0.04", withRadius(qc(core.RangeScore), 0.04)},
		{"b_k=5", withK(qc(core.RangeScore), 5)},
		{"b_k=40", withK(qc(core.RangeScore), 40)},
		{"c_lambda=0.1", withLambda(qc(core.RangeScore), 0.1)},
		{"c_lambda=0.9", withLambda(qc(core.RangeScore), 0.9)},
		{"d_qkw=1", withQKw(qc(core.RangeScore), 1)},
		{"d_qkw=9", withQKw(qc(core.RangeScore), 9)},
	}
	for _, sw := range sweeps {
		sw := sw
		b.Run(sw.name, func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, sw.cfg)
				runQueries(b, e, "stps", qs)
			})
		})
	}
}

// BenchmarkFig10 is the influence-score scalability of Figure 10 at the
// default data point.
func BenchmarkFig10(b *testing.B) {
	for _, f := range []int{10_000, 40_000} {
		f := f
		b.Run(fmt.Sprintf("a_features=%d", f), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				key.features = f
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, qc(core.InfluenceScore))
				runQueries(b, e, "stps", qs)
			})
		})
	}
}

// BenchmarkFig11 is the influence variant on the real surrogate (k sweep).
func BenchmarkFig11(b *testing.B) {
	for _, k := range []int{5, 10, 40} {
		k := k
		b.Run(fmt.Sprintf("a_k=%d", k), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := realKey(kind)
				cfg := qc(core.InfluenceScore)
				cfg.K = k
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, cfg)
				runQueries(b, e, "stps", qs)
			})
		})
	}
	for _, n := range []int{1, 9} {
		n := n
		b.Run(fmt.Sprintf("b_qkw=%d", n), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := realKey(kind)
				cfg := qc(core.InfluenceScore)
				cfg.NumKeywords = n
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, cfg)
				runQueries(b, e, "stps", qs)
			})
		})
	}
}

// BenchmarkFig12 is the influence variant on synthetic data (query
// parameters).
func BenchmarkFig12(b *testing.B) {
	sweeps := []struct {
		name string
		cfg  datagen.QueryConfig
	}{
		{"b_k=5", withK(qc(core.InfluenceScore), 5)},
		{"b_k=40", withK(qc(core.InfluenceScore), 40)},
		{"c_lambda=0.1", withLambda(qc(core.InfluenceScore), 0.1)},
		{"c_lambda=0.9", withLambda(qc(core.InfluenceScore), 0.9)},
		{"d_qkw=1", withQKw(qc(core.InfluenceScore), 1)},
		{"d_qkw=9", withQKw(qc(core.InfluenceScore), 9)},
	}
	for _, sw := range sweeps {
		sw := sw
		b.Run(sw.name, func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, sw.cfg)
				runQueries(b, e, "stps", qs)
			})
		})
	}
}

// BenchmarkFig13 is the nearest-neighbor variant's scalability (Voronoi
// costs included in the measured time).
func BenchmarkFig13(b *testing.B) {
	for _, f := range []int{10_000, 40_000} {
		f := f
		b.Run(fmt.Sprintf("a_features=%d", f), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				key.features = f
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, qc(core.NearestNeighborScore))
				runQueries(b, e, "stps", qs)
			})
		})
	}
	for _, o := range []int{10_000, 40_000} {
		o := o
		b.Run(fmt.Sprintf("b_objects=%d", o), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				key.objects = o
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, qc(core.NearestNeighborScore))
				runQueries(b, e, "stps", qs)
			})
		})
	}
}

// BenchmarkFig14 is the nearest-neighbor variant while varying k.
func BenchmarkFig14(b *testing.B) {
	for _, k := range []int{5, 10, 40} {
		k := k
		b.Run(fmt.Sprintf("a_real_k=%d", k), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := realKey(kind)
				cfg := qc(core.NearestNeighborScore)
				cfg.K = k
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, cfg)
				runQueries(b, e, "stps", qs)
			})
		})
		b.Run(fmt.Sprintf("b_synthetic_k=%d", k), func(b *testing.B) {
			forKinds(b, func(b *testing.B, kind index.Kind) {
				key := synKey(kind)
				cfg := qc(core.NearestNeighborScore)
				cfg.K = k
				e := benchEngine(b, key)
				qs := benchDataset(b, key).GenQueries(benchQueries, cfg)
				runQueries(b, e, "stps", qs)
			})
		})
	}
}

// Ablation benchmarks for the design choices called out in DESIGN.md.

// BenchmarkAblationBatchSTDS compares the batched score computation
// against the literal one-object-at-a-time Algorithm 1.
func BenchmarkAblationBatchSTDS(b *testing.B) {
	key := synKey(index.SRT)
	key.objects, key.features = 5_000, 5_000
	ds := benchDataset(b, key)
	for _, batch := range []bool{true, false} {
		batch := batch
		name := "batched"
		if !batch {
			name = "single"
		}
		b.Run(name, func(b *testing.B) {
			opts := index.Options{Kind: index.SRT, VocabWidth: ds.VocabWidth, BufferPages: 256}
			oidx, err := index.BuildObjectIndex(ds.Objects, opts)
			if err != nil {
				b.Fatal(err)
			}
			fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
			for i, fs := range ds.FeatureSets {
				if fidxs[i], err = index.BuildFeatureIndex(fs, opts); err != nil {
					b.Fatal(err)
				}
			}
			e, err := core.NewEngine(oidx, fidxs, core.Options{BatchSTDS: batch})
			if err != nil {
				b.Fatal(err)
			}
			qs := ds.GenQueries(benchQueries, qc(core.RangeScore))
			runQueries(b, e, "stds", qs)
		})
	}
}

// BenchmarkAblationPulling compares the prioritized pulling strategy of
// Definition 5 against round-robin.
func BenchmarkAblationPulling(b *testing.B) {
	key := synKey(index.SRT)
	key.sets = 3
	ds := benchDataset(b, key)
	for _, pull := range []core.PullStrategy{core.PullPrioritized, core.PullRoundRobin} {
		pull := pull
		b.Run(pull.String(), func(b *testing.B) {
			opts := index.Options{Kind: index.SRT, VocabWidth: ds.VocabWidth, BufferPages: 256}
			oidx, err := index.BuildObjectIndex(ds.Objects, opts)
			if err != nil {
				b.Fatal(err)
			}
			fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
			for i, fs := range ds.FeatureSets {
				if fidxs[i], err = index.BuildFeatureIndex(fs, opts); err != nil {
					b.Fatal(err)
				}
			}
			e, err := core.NewEngine(oidx, fidxs, core.Options{Pull: pull})
			if err != nil {
				b.Fatal(err)
			}
			qs := ds.GenQueries(benchQueries, qc(core.RangeScore))
			runQueries(b, e, "stps", qs)
		})
	}
}

// BenchmarkAblationCombinations compares the lazy combination lattice with
// the paper's eager materialization (at a reduced scale: for the range
// variant the lazy lattice must wade through invalid combinations that
// eager generation filters out, so it is orders of magnitude slower here).
func BenchmarkAblationCombinations(b *testing.B) {
	key := synKey(index.SRT)
	key.sets = 3
	key.objects, key.features = 2_000, 2_000
	ds := benchDataset(b, key)
	for _, mode := range []core.CombinationMode{core.CombinationsLazy, core.CombinationsEager} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			opts := index.Options{Kind: index.SRT, VocabWidth: ds.VocabWidth, BufferPages: 256}
			oidx, err := index.BuildObjectIndex(ds.Objects, opts)
			if err != nil {
				b.Fatal(err)
			}
			fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
			for i, fs := range ds.FeatureSets {
				if fidxs[i], err = index.BuildFeatureIndex(fs, opts); err != nil {
					b.Fatal(err)
				}
			}
			e, err := core.NewEngine(oidx, fidxs, core.Options{Combinations: mode})
			if err != nil {
				b.Fatal(err)
			}
			qs := ds.GenQueries(benchQueries, qc(core.RangeScore))
			runQueries(b, e, "stps", qs)
		})
	}
}

// query-config helpers.

func withRadius(c datagen.QueryConfig, r float64) datagen.QueryConfig {
	c.Radius = r
	return c
}

func withK(c datagen.QueryConfig, k int) datagen.QueryConfig {
	c.K = k
	return c
}

func withLambda(c datagen.QueryConfig, l float64) datagen.QueryConfig {
	c.Lambda = l
	return c
}

func withQKw(c datagen.QueryConfig, n int) datagen.QueryConfig {
	c.NumKeywords = n
	return c
}

// BenchmarkAblationVoronoiCache measures the NN variant with and without
// the cross-query Voronoi cell cache (the paper's Section 8.5 suggestion
// for static data).
func BenchmarkAblationVoronoiCache(b *testing.B) {
	key := synKey(index.SRT)
	key.objects, key.features = 10_000, 10_000
	ds := benchDataset(b, key)
	for _, cache := range []bool{false, true} {
		cache := cache
		name := "cold"
		if cache {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			opts := index.Options{Kind: index.SRT, VocabWidth: ds.VocabWidth, BufferPages: 256}
			oidx, err := index.BuildObjectIndex(ds.Objects, opts)
			if err != nil {
				b.Fatal(err)
			}
			fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
			for i, fs := range ds.FeatureSets {
				if fidxs[i], err = index.BuildFeatureIndex(fs, opts); err != nil {
					b.Fatal(err)
				}
			}
			e, err := core.NewEngine(oidx, fidxs, core.Options{CacheVoronoiCells: cache})
			if err != nil {
				b.Fatal(err)
			}
			qs := ds.GenQueries(benchQueries, qc(core.NearestNeighborScore))
			if cache {
				// Warm the cache with one pass, as a precomputed
				// structure would.
				for _, q := range qs {
					if _, _, err := e.STPS(q); err != nil {
						b.Fatal(err)
					}
				}
			}
			runQueries(b, e, "stps", qs)
		})
	}
}

// BenchmarkAblationSignature compares exact keyword bitmaps against
// hashed signature files with record-verification I/O (classic IR²-tree
// signatures).
func BenchmarkAblationSignature(b *testing.B) {
	key := synKey(index.IR2)
	key.objects, key.features = 10_000, 10_000
	ds := benchDataset(b, key)
	for _, sigBits := range []int{0, 32, 8} {
		sigBits := sigBits
		name := "exact"
		if sigBits > 0 {
			name = fmt.Sprintf("sig%d", sigBits)
		}
		b.Run(name, func(b *testing.B) {
			opts := index.Options{Kind: index.IR2, VocabWidth: ds.VocabWidth, BufferPages: 256, SignatureBits: sigBits}
			oidx, err := index.BuildObjectIndex(ds.Objects, opts)
			if err != nil {
				b.Fatal(err)
			}
			fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
			for i, fs := range ds.FeatureSets {
				if fidxs[i], err = index.BuildFeatureIndex(fs, opts); err != nil {
					b.Fatal(err)
				}
			}
			e, err := core.NewEngine(oidx, fidxs, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			qs := ds.GenQueries(benchQueries, qc(core.RangeScore))
			runQueries(b, e, "stps", qs)
		})
	}
}

// BenchmarkConcurrentTopK measures parallel query throughput — the
// serving scenario of internal/serve — with one goroutine per CPU
// (GOMAXPROCS) hammering the same engine through session views. Compare
// against BenchmarkTable3/BenchmarkFig7 single-threaded latency to see
// the scaling of the concurrent read path.
func BenchmarkConcurrentTopK(b *testing.B) {
	forKinds(b, func(b *testing.B, kind index.Kind) {
		for _, alg := range []string{"stps", "stds"} {
			alg := alg
			b.Run(alg, func(b *testing.B) {
				e := benchEngine(b, synKey(kind))
				qs := benchDataset(b, synKey(kind)).GenQueries(benchQueries, qc(core.RangeScore))
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						q := qs[i%len(qs)]
						i++
						var err error
						if alg == "stds" {
							_, _, err = e.STDS(q)
						} else {
							_, _, err = e.STPS(q)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	})
}
