// Command persistence demonstrates saving a built database to disk and
// reopening it: index construction becomes a one-off cost, after which a
// service can start serving top-k spatio-textual preference queries in
// milliseconds.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"stpq"
)

func main() {
	dir, err := os.MkdirTemp("", "stpq-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build a moderately sized database.
	rng := rand.New(rand.NewSource(9))
	db := stpq.New(stpq.Config{})
	objs := make([]stpq.Object, 20_000)
	for i := range objs {
		objs[i] = stpq.Object{ID: int64(i), X: rng.Float64(), Y: rng.Float64()}
	}
	db.AddObjects(objs)
	menu := []string{"pizza", "sushi", "tacos", "ramen", "bbq", "pho", "curry", "bagels"}
	feats := make([]stpq.Feature, 30_000)
	for i := range feats {
		feats[i] = stpq.Feature{
			ID: int64(i), X: rng.Float64(), Y: rng.Float64(), Score: rng.Float64(),
			Keywords: []string{menu[rng.Intn(len(menu))], menu[rng.Intn(len(menu))]},
		}
	}
	db.AddFeatureSet("restaurants", feats)

	start := time.Now()
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)

	start = time.Now()
	if err := db.Save(dir); err != nil {
		log.Fatal(err)
	}
	saveTime := time.Since(start)

	// A fresh process would start here.
	start = time.Now()
	reopened, err := stpq.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	openTime := time.Since(start)

	q := stpq.Query{
		K: 5, Radius: 0.02, Lambda: 0.5,
		Keywords: map[string][]string{"restaurants": {"pizza", "bbq"}},
	}
	a, _, err := db.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	b, stats, err := reopened.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			log.Fatalf("rank %d differs after reopen", i)
		}
	}

	fmt.Printf("build:  %v (20k objects + 30k features)\n", buildTime.Round(time.Millisecond))
	fmt.Printf("save:   %v\n", saveTime.Round(time.Millisecond))
	fmt.Printf("open:   %v  (%.0fx faster than building)\n",
		openTime.Round(time.Millisecond), float64(buildTime)/float64(openTime))
	fmt.Printf("query on reopened DB: top-%d identical to original, %v CPU\n",
		q.K, stats.CPUTime.Round(time.Microsecond))
}
