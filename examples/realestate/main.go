// Command realestate demonstrates the nearest-neighbor score variant:
// rank house listings by the quality of the closest school and the closest
// park — the buyer cares about the facility they will actually use, which
// is the nearest one, not the best one within some radius.
//
// This exercises the paper's Section 7.2 machinery: STPS retrieves
// high-quality (school, park) combinations and finds the listings whose
// Voronoi cells intersect, reporting the Voronoi construction cost
// separately (the striped bars of the paper's Figures 13–14).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"stpq"
)

func main() {
	rng := rand.New(rand.NewSource(77))

	db := stpq.New(stpq.Config{})
	db.AddObjects(makeListings(rng, 3000))
	db.AddFeatureSet("schools", makeSchools(rng, 250))
	db.AddFeatureSet("parks", makeParks(rng, 400))
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Home search — ranked by nearest school and park quality")
	fmt.Println("========================================================")

	q := stpq.Query{
		K: 8, Lambda: 0.3, // quality matters more than tag match here
		Variant: stpq.NearestNeighbor,
		Keywords: map[string][]string{
			"schools": {"elementary", "stem"},
			"parks":   {"playground", "trails"},
		},
	}
	res, stats, err := db.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res {
		fmt.Printf("  %d. listing %-5d score %.4f   at (%.3f, %.3f)\n",
			i+1, r.ID, r.Score, r.X, r.Y)
	}
	fmt.Printf("\nCost: %v CPU + %v modeled I/O\n", stats.CPUTime.Round(1000), stats.IOTime)
	fmt.Printf("  of which Voronoi cells: %v CPU, %d page reads\n",
		stats.VoronoiCPUTime.Round(1000), stats.VoronoiReads)
	fmt.Printf("  combinations examined: %d\n", stats.Combinations)

	// Sanity: the top listing's nearest school/park really are good — use
	// the brute-force scorer to confirm the reported score.
	exact, err := db.Score(q, res[0].X, res[0].Y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVerification: top listing reported %.6f, brute force %.6f\n",
		res[0].Score, exact)
	if math.Abs(res[0].Score-exact) > 1e-9 {
		log.Fatal("score mismatch!")
	}
}

func clamp(v float64) float64 { return math.Min(1, math.Max(0, v)) }

// makeListings spreads listings over suburban blobs.
func makeListings(rng *rand.Rand, n int) []stpq.Object {
	out := make([]stpq.Object, n)
	for i := range out {
		cx, cy := 0.15+0.7*rng.Float64(), 0.15+0.7*rng.Float64()
		out[i] = stpq.Object{
			ID: int64(i + 1),
			X:  clamp(cx + 0.02*rng.NormFloat64()),
			Y:  clamp(cy + 0.02*rng.NormFloat64()),
		}
	}
	return out
}

func makeSchools(rng *rand.Rand, n int) []stpq.Feature {
	kinds := [][]string{
		{"elementary", "stem"}, {"elementary", "arts"}, {"middle", "stem"},
		{"high", "athletics"}, {"elementary", "montessori"},
	}
	out := make([]stpq.Feature, n)
	for i := range out {
		out[i] = stpq.Feature{
			ID: int64(i + 1),
			X:  rng.Float64(), Y: rng.Float64(),
			Score:    0.3 + 0.7*rng.Float64(), // school rating
			Keywords: kinds[rng.Intn(len(kinds))],
		}
	}
	return out
}

func makeParks(rng *rand.Rand, n int) []stpq.Feature {
	kinds := [][]string{
		{"playground", "trails"}, {"dog-park", "trails"}, {"playground", "sports"},
		{"trails", "lake"}, {"gardens", "playground"},
	}
	out := make([]stpq.Feature, n)
	for i := range out {
		out[i] = stpq.Feature{
			ID: int64(i + 1),
			X:  rng.Float64(), Y: rng.Float64(),
			Score:    0.2 + 0.8*rng.Float64(),
			Keywords: kinds[rng.Intn(len(kinds))],
		}
	}
	return out
}
