// Command cityguide reproduces the paper's introduction scenario at city
// scale: rank hotels by the quality of the restaurants AND coffeehouses in
// their walking range, honouring the tourist's tastes.
//
// It generates a synthetic city of ~2,000 hotels, ~5,000 restaurants and
// ~3,000 coffeehouses spread over a dozen districts, then answers three
// different tourists' preference queries with all three algorithms/score
// shapes exposed by the public API.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"stpq"
)

// district is one city neighbourhood with its own culinary character.
type district struct {
	x, y, spread float64
	cuisines     []string
	quality      float64 // mean venue quality
}

func main() {
	rng := rand.New(rand.NewSource(2015))
	districts := makeDistricts(rng)

	db := stpq.New(stpq.Config{})
	db.AddObjects(makeHotels(rng, districts, 2000))
	db.AddFeatureSet("restaurants", makeRestaurants(rng, districts, 5000))
	db.AddFeatureSet("coffeehouses", makeCoffeehouses(rng, districts, 3000))
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}

	// Tourist 1: the paper's query — a good Italian place that serves
	// pizza, plus an espresso bar with muffins, all within a short walk.
	run(db, "Pizza & espresso tourist (range score)", stpq.Query{
		K: 5, Radius: 0.02, Lambda: 0.5,
		Keywords: map[string][]string{
			"restaurants":  {"italian", "pizza"},
			"coffeehouses": {"espresso", "muffins"},
		},
	})

	// Tourist 2: sushi lover who prefers close venues but does not want a
	// hard cut-off — influence score decays with distance instead.
	run(db, "Sushi lover (influence score)", stpq.Query{
		K: 5, Radius: 0.015, Lambda: 0.7,
		Variant: stpq.Influence,
		Keywords: map[string][]string{
			"restaurants":  {"sushi", "japanese"},
			"coffeehouses": {"tea"},
		},
	})

	// Tourist 3: judges a hotel strictly by its closest venue of each
	// kind — nearest-neighbor score.
	run(db, "First-impressions tourist (nearest neighbor score)", stpq.Query{
		K: 5, Lambda: 0.4,
		Variant: stpq.NearestNeighbor,
		Keywords: map[string][]string{
			"restaurants":  {"french", "bistro"},
			"coffeehouses": {"croissants", "espresso"},
		},
	})

	// The same query through the STDS baseline returns identical answers;
	// compare the work done.
	q := stpq.Query{
		K: 5, Radius: 0.02, Lambda: 0.5,
		Keywords: map[string][]string{
			"restaurants":  {"italian", "pizza"},
			"coffeehouses": {"espresso", "muffins"},
		},
	}
	_, fast, err := db.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	q.Algorithm = stpq.STDS
	_, slow, err := db.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSTPS vs STDS on the same query: %d vs %d page reads (%.1fx)\n",
		fast.LogicalReads, slow.LogicalReads,
		float64(slow.LogicalReads)/math.Max(1, float64(fast.LogicalReads)))
}

// run executes one query and pretty-prints the ranking.
func run(db *stpq.DB, title string, q stpq.Query) {
	res, stats, err := db.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", title)
	for rank, r := range res {
		fmt.Printf("  %d. hotel %-5d score %.4f   at (%.3f, %.3f)\n",
			rank+1, r.ID, r.Score, r.X, r.Y)
	}
	fmt.Printf("  [%d combinations, %d features pulled, %d page reads]\n",
		stats.Combinations, stats.FeaturesPulled, stats.LogicalReads)
}

// makeDistricts lays out 12 districts with distinct culinary identities.
func makeDistricts(rng *rand.Rand) []district {
	styles := [][]string{
		{"italian", "pizza", "pasta"},
		{"sushi", "japanese", "ramen"},
		{"french", "bistro", "wine-bar"},
		{"mexican", "tacos", "tex-mex"},
		{"chinese", "dim-sum", "noodles"},
		{"greek", "mediterranean", "tapas"},
	}
	out := make([]district, 12)
	for i := range out {
		out[i] = district{
			x: rng.Float64(), y: rng.Float64(), spread: 0.015 + 0.02*rng.Float64(),
			cuisines: styles[i%len(styles)],
			quality:  0.4 + 0.5*rng.Float64(),
		}
	}
	return out
}

func clamp(v float64) float64 { return math.Min(1, math.Max(0, v)) }

func makeHotels(rng *rand.Rand, ds []district, n int) []stpq.Object {
	out := make([]stpq.Object, n)
	for i := range out {
		d := ds[rng.Intn(len(ds))]
		out[i] = stpq.Object{
			ID: int64(i + 1),
			X:  clamp(d.x + d.spread*rng.NormFloat64()),
			Y:  clamp(d.y + d.spread*rng.NormFloat64()),
		}
	}
	return out
}

func makeRestaurants(rng *rand.Rand, ds []district, n int) []stpq.Feature {
	out := make([]stpq.Feature, n)
	for i := range out {
		d := ds[rng.Intn(len(ds))]
		kws := []string{d.cuisines[rng.Intn(len(d.cuisines))]}
		if rng.Intn(2) == 0 {
			kws = append(kws, d.cuisines[rng.Intn(len(d.cuisines))])
		}
		out[i] = stpq.Feature{
			ID:       int64(i + 1),
			X:        clamp(d.x + d.spread*rng.NormFloat64()),
			Y:        clamp(d.y + d.spread*rng.NormFloat64()),
			Score:    clamp(d.quality + 0.15*rng.NormFloat64()),
			Keywords: kws,
		}
	}
	return out
}

func makeCoffeehouses(rng *rand.Rand, ds []district, n int) []stpq.Feature {
	menu := []string{"espresso", "muffins", "croissants", "tea", "decaf", "cappuccino", "cake", "donuts"}
	out := make([]stpq.Feature, n)
	for i := range out {
		d := ds[rng.Intn(len(ds))]
		kws := []string{menu[rng.Intn(len(menu))], menu[rng.Intn(len(menu))]}
		out[i] = stpq.Feature{
			ID:       int64(i + 1),
			X:        clamp(d.x + d.spread*rng.NormFloat64()),
			Y:        clamp(d.y + d.spread*rng.NormFloat64()),
			Score:    clamp(d.quality + 0.2*rng.NormFloat64()),
			Keywords: kws,
		}
	}
	return out
}
