// Command tripplanner demonstrates the influence score variant on a
// road-trip scenario: rank candidate overnight stops by the attractions
// around them, where an attraction's pull decays smoothly with distance
// instead of vanishing at a hard radius.
//
// The influence score (paper Definition 6) is the right shape here: a
// world-class museum 15 minutes away should still beat a mediocre one
// across the street, which a hard range constraint cannot express.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"stpq"
)

func main() {
	rng := rand.New(rand.NewSource(66))

	db := stpq.New(stpq.Config{})
	db.AddObjects(makeStops(rng, 1500))
	db.AddFeatureSet("attractions", makeAttractions(rng, 2500))
	db.AddFeatureSet("diners", makeDiners(rng, 2000))
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Road trip planner — influence-ranked overnight stops")
	fmt.Println("====================================================")

	// A family trip: parks and scenic views, pancakes in the morning.
	family := stpq.Query{
		K: 5, Radius: 0.03, Lambda: 0.5,
		Variant: stpq.Influence,
		Keywords: map[string][]string{
			"attractions": {"park", "scenic", "wildlife"},
			"diners":      {"pancakes", "breakfast"},
		},
	}
	show(db, "Family trip (parks + pancakes)", family)

	// A culture trip: museums and landmarks, coffee later.
	culture := stpq.Query{
		K: 5, Radius: 0.03, Lambda: 0.6,
		Variant: stpq.Influence,
		Keywords: map[string][]string{
			"attractions": {"museum", "landmark", "gallery"},
			"diners":      {"coffee", "bakery"},
		},
	}
	show(db, "Culture trip (museums + coffee)", culture)

	// Show why influence beats range here: compare the same preferences
	// under the hard range constraint.
	rangeQ := family
	rangeQ.Variant = stpq.Range
	resI, _, err := db.TopK(family)
	if err != nil {
		log.Fatal(err)
	}
	resR, _, err := db.TopK(rangeQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nInfluence vs hard range, same preferences:")
	fmt.Printf("  influence top stop: %d (score %.3f — graded by distance)\n", resI[0].ID, resI[0].Score)
	fmt.Printf("  range top stop:     %d (score %.3f — cliff at r)\n", resR[0].ID, resR[0].Score)
	overlap := 0
	ids := map[int64]bool{}
	for _, r := range resI {
		ids[r.ID] = true
	}
	for _, r := range resR {
		if ids[r.ID] {
			overlap++
		}
	}
	fmt.Printf("  top-5 overlap: %d/5\n", overlap)
}

func show(db *stpq.DB, title string, q stpq.Query) {
	res, stats, err := db.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", title)
	for i, r := range res {
		fmt.Printf("  %d. stop %-5d influence score %.4f\n", i+1, r.ID, r.Score)
	}
	fmt.Printf("  [cost: %v CPU + %v modeled I/O, %d combinations]\n",
		stats.CPUTime.Round(1000), stats.IOTime, stats.Combinations)
}

func clamp(v float64) float64 { return math.Min(1, math.Max(0, v)) }

// makeStops scatters candidate overnight stops along two highway arcs.
func makeStops(rng *rand.Rand, n int) []stpq.Object {
	out := make([]stpq.Object, n)
	for i := range out {
		t := rng.Float64()
		var x, y float64
		if rng.Intn(2) == 0 { // southern arc
			x, y = t, 0.3+0.2*math.Sin(3*t)
		} else { // northern arc
			x, y = t, 0.7+0.15*math.Cos(4*t)
		}
		out[i] = stpq.Object{
			ID: int64(i + 1),
			X:  clamp(x + 0.01*rng.NormFloat64()),
			Y:  clamp(y + 0.01*rng.NormFloat64()),
		}
	}
	return out
}

func makeAttractions(rng *rand.Rand, n int) []stpq.Feature {
	kinds := [][]string{
		{"park", "scenic"}, {"museum", "gallery"}, {"landmark", "historic"},
		{"wildlife", "park"}, {"scenic", "viewpoint"}, {"museum", "landmark"},
	}
	out := make([]stpq.Feature, n)
	for i := range out {
		out[i] = stpq.Feature{
			ID: int64(i + 1),
			X:  rng.Float64(), Y: rng.Float64(),
			Score:    0.2 + 0.8*rng.Float64(),
			Keywords: kinds[rng.Intn(len(kinds))],
		}
	}
	return out
}

func makeDiners(rng *rand.Rand, n int) []stpq.Feature {
	menus := [][]string{
		{"pancakes", "breakfast"}, {"coffee", "bakery"}, {"burgers", "shakes"},
		{"breakfast", "coffee"}, {"pie", "coffee"},
	}
	out := make([]stpq.Feature, n)
	for i := range out {
		out[i] = stpq.Feature{
			ID: int64(i + 1),
			X:  rng.Float64(), Y: rng.Float64(),
			Score:    0.3 + 0.7*rng.Float64(),
			Keywords: menus[rng.Intn(len(menus))],
		}
	}
	return out
}
