// Command quickstart is the smallest end-to-end use of the stpq library:
// index a handful of hotels and restaurants, then ask for the hotels that
// have a highly rated Italian restaurant serving pizza nearby — the
// paper's motivating query.
package main

import (
	"fmt"
	"log"

	"stpq"
)

func main() {
	// Tracing records a span tree per query (phase timings and page-read
	// deltas); it is off by default and costs one nil check when off.
	db := stpq.New(stpq.Config{Tracing: true})

	// Data objects: the entities we rank (coordinates in [0,1]²).
	db.AddObjects([]stpq.Object{
		{ID: 1, X: 0.20, Y: 0.20},
		{ID: 2, X: 0.52, Y: 0.48},
		{ID: 3, X: 0.80, Y: 0.75},
	})

	// Feature objects: facilities with a quality score and keywords.
	db.AddFeatureSet("restaurants", []stpq.Feature{
		{ID: 1, X: 0.21, Y: 0.22, Score: 0.9, Keywords: []string{"steak", "bbq"}},
		{ID: 2, X: 0.50, Y: 0.50, Score: 0.8, Keywords: []string{"pizza", "italian"}},
		{ID: 3, X: 0.55, Y: 0.45, Score: 0.6, Keywords: []string{"pizza"}},
		{ID: 4, X: 0.82, Y: 0.74, Score: 0.3, Keywords: []string{"italian"}},
	})

	if err := db.Build(); err != nil {
		log.Fatal(err)
	}

	results, stats, err := db.TopK(stpq.Query{
		K:      3,
		Radius: 0.1, // "nearby" = within 0.1 of the hotel
		Lambda: 0.5, // balance rating vs. keyword match equally
		Keywords: map[string][]string{
			"restaurants": {"italian", "pizza"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Hotels with a good Italian pizza place nearby:")
	for rank, r := range results {
		fmt.Printf("  %d. hotel %d  score %.3f\n", rank+1, r.ID, r.Score)
	}
	fmt.Printf("(answered with %d page reads, %v CPU)\n",
		stats.LogicalReads, stats.CPUTime.Round(1000))

	// The trace breaks the query down by phase. Print one level: the query
	// root and its direct children.
	if root := stats.Trace; root != nil {
		fmt.Printf("phases of %s (%v, %d/%d logical/physical reads):\n",
			root.Name, root.Duration.Round(1000), root.LogicalReads, root.PhysicalReads)
		for _, child := range root.Children {
			fmt.Printf("  %-18s ×%-4d %v\n", child.Name, child.Count, child.Duration.Round(1000))
		}
	}
}
