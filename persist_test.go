package stpq

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := paperDB(t, Config{})
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	// The manifest and page dumps must exist.
	for _, name := range []string{"stpq.json", "objects.pages", "features_0.pages", "features_1.pages"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Same answers, same scores, for every variant and both algorithms.
	for _, variant := range []Variant{Range, Influence, NearestNeighbor} {
		for _, alg := range []Algorithm{STPS, STDS} {
			q := paperQuery(4, alg)
			q.Variant = variant
			want, _, err := db.TopK(q)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := reopened.TopK(q)
			if err != nil {
				t.Fatalf("variant %v alg %v: %v", variant, alg, err)
			}
			if len(got) != len(want) {
				t.Fatalf("variant %v: %d vs %d results", variant, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
					t.Fatalf("variant %v rank %d: got (%d, %v), want (%d, %v)",
						variant, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				}
			}
		}
	}
	// Feature set names and keyword statistics survive.
	names := reopened.FeatureSetNames()
	if len(names) != 2 || names[0] != "restaurants" {
		t.Fatalf("names = %v", names)
	}
	stats, err := reopened.KeywordStats("restaurants")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range stats {
		if s.Keyword == "pizza" && s.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("keyword stats lost after reopen")
	}
	// Selectivity too.
	sel, err := reopened.Selectivity("restaurants", []string{"pizza", "italian"})
	if err != nil || math.Abs(sel-3.0/8.0) > 1e-12 {
		t.Fatalf("selectivity after reopen = %v, %v", sel, err)
	}
}

func TestSaveValidation(t *testing.T) {
	if err := New(Config{}).Save(t.TempDir()); err == nil {
		t.Error("Save before Build must fail")
	}
	db := paperDB(t, Config{IndexKind: IR2, SignatureBits: 8})
	if err := db.Save(t.TempDir()); err == nil {
		t.Error("signature-mode Save must fail")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open of empty dir must fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "stpq.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open with corrupt manifest must fail")
	}
	if err := os.WriteFile(filepath.Join(dir, "stpq.json"), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open with unknown version must fail")
	}
}

func TestOpenedDBIsQueryOnly(t *testing.T) {
	dir := t.TempDir()
	db := paperDB(t, Config{})
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := reopened.Build(); err == nil {
		t.Error("Build on an opened DB must fail")
	}
}

// TestShapeStatsSurviveRestart pins the planner's persistent memory: a DB
// that has recorded per-shape statistics saves them alongside the indexes,
// and the reopened DB predicts — and plans — from them immediately instead
// of re-learning every shape from scratch.
func TestShapeStatsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	db := paperDB(t, Config{})
	q := paperQuery(4, STPS)
	for i := 0; i < MinPredictSamples; i++ {
		if _, _, err := db.TopK(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "shapes.json")); err != nil {
		t.Fatalf("shapes.json not saved: %v", err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := reopened.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Predicted == nil || ex.Samples < int64(MinPredictSamples) {
		t.Fatalf("reopened DB is cold: predicted %v, %d samples", ex.Predicted, ex.Samples)
	}
	// The statistics must match what the original process recorded.
	origEx, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if *ex.Predicted != *origEx.Predicted {
		t.Fatalf("prediction drifted across restart:\nreopened %+v\noriginal %+v", *ex.Predicted, *origEx.Predicted)
	}
}

// TestShapeStatsCorruptFileRejected: a corrupt shapes.json must fail Open
// loudly — silently dropping the planner's memory would be invisible.
func TestShapeStatsCorruptFileRejected(t *testing.T) {
	dir := t.TempDir()
	db := paperDB(t, Config{})
	q := paperQuery(4, STPS)
	for i := 0; i < MinPredictSamples; i++ {
		if _, _, err := db.TopK(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shapes.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a corrupt shapes.json")
	}
	// A missing file is fine (older snapshots have none).
	if err := os.Remove(filepath.Join(dir, "shapes.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("Open rejected a snapshot without shapes.json: %v", err)
	}
}
