// Package stpq implements top-k spatio-textual preference queries: ranked
// retrieval of spatial data objects (e.g. hotels) by the quality and
// textual relevance of feature objects (e.g. restaurants, coffeehouses)
// located in their neighborhood.
//
// It is a from-scratch reproduction of "On Processing Top-k Spatio-Textual
// Preference Queries" (Tsatsanifos & Vlachou, EDBT 2015), including the
// SRT-index, the STDS and STPS query processing algorithms, and the range,
// influence and nearest-neighbor score variants.
//
// # Quick start
//
//	db := stpq.New(stpq.Config{})
//	db.AddObjects([]stpq.Object{{ID: 1, X: 0.52, Y: 0.41}})
//	db.AddFeatureSet("restaurants", []stpq.Feature{
//		{ID: 1, X: 0.53, Y: 0.40, Score: 0.8, Keywords: []string{"pizza", "italian"}},
//	})
//	if err := db.Build(); err != nil { ... }
//	res, stats, err := db.TopK(stpq.Query{
//		K:      5,
//		Radius: 0.05,
//		Lambda: 0.5,
//		Keywords: map[string][]string{"restaurants": {"italian", "pizza"}},
//	})
//
// Coordinates are expected in the normalized unit square [0,1]×[0,1] and
// feature scores (ratings) in [0,1], matching the paper's setup.
package stpq

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"stpq/internal/core"
	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/ingest"
	"stpq/internal/invindex"
	"stpq/internal/kwset"
	"stpq/internal/obs"
	"stpq/internal/shard"
	"stpq/internal/storage"
)

// Object is a data object p ∈ O: the entities being ranked.
type Object struct {
	ID   int64
	X, Y float64
}

// Feature is a feature object t ∈ F_i: a facility with a quality score in
// [0,1] and a textual description.
type Feature struct {
	ID       int64
	X, Y     float64
	Score    float64
	Keywords []string
}

// IndexKind selects the feature index structure.
type IndexKind int

const (
	// SRT is the paper's SRT-index: feature objects are clustered by
	// spatial location, score and keyword similarity together (default).
	SRT IndexKind = iota
	// IR2 is the modified IR²-tree baseline: spatial clustering only,
	// augmented with score and keyword summaries.
	IR2
)

// Variant selects the preference score definition.
type Variant int

const (
	// Range scores an object by the best relevant feature within Radius.
	Range Variant = iota
	// Influence drops the hard range: feature scores decay exponentially
	// with distance (halving every Radius).
	Influence
	// NearestNeighbor scores an object by its spatially nearest feature
	// of each set, if that feature is relevant.
	NearestNeighbor
)

// Similarity selects the textual similarity function sim(t, W) of the
// preference score (Definition 1). The paper evaluates Jaccard; the other
// measures plug into the same framework with sound index bounds.
type Similarity int

const (
	// JaccardSim is |t.W ∩ W| / |t.W ∪ W| (default, the paper's choice).
	JaccardSim Similarity = iota
	// DiceSim is 2|t.W ∩ W| / (|t.W| + |W|).
	DiceSim
	// CosineSim is |t.W ∩ W| / √(|t.W|·|W|).
	CosineSim
	// OverlapSim is |t.W ∩ W| / min(|t.W|, |W|).
	OverlapSim
)

// ShardStrategy selects the spatial partitioner of a sharded DB
// (Config.ShardCount > 1).
type ShardStrategy int

const (
	// ShardHilbert cuts the Hilbert curve over the data objects into
	// equal-count runs (default; balanced under skew).
	ShardHilbert ShardStrategy = iota
	// ShardGrid overlays a fixed uniform grid on the object MBR.
	ShardGrid
)

// MergePolicy selects how the live write path folds pending mutations
// into the base indexes on Flush, auto-flush and compaction.
type MergePolicy int

const (
	// MergeAuto (default) applies the delta incrementally into
	// copy-on-write clones of the base indexes — merge cost proportional
	// to the delta, not the base — and falls back to a full rebuild when
	// the tree-quality heuristic reports degradation (cumulative
	// incremental drift, overflow-split count, or height growth past the
	// bulk-loaded baseline).
	MergeAuto MergePolicy = iota
	// MergeIncremental always merges incrementally, skipping the
	// degradation fallback (benchmarks and tests).
	MergeIncremental
	// MergeRebuild always re-bulk-loads the whole engine — the pre-
	// generational behaviour, kept as the benchmark baseline.
	MergeRebuild
)

// Algorithm selects the query processing strategy.
type Algorithm int

const (
	// STPS (Spatio-Textual Preference Search) retrieves highly ranked
	// feature combinations first, then objects near them (default; orders
	// of magnitude faster).
	STPS Algorithm = iota
	// STDS (Spatio-Textual Data Scan) scores every data object; the
	// paper's baseline.
	STDS
	// Auto delegates the choice to the cost-based planner: the recorded
	// per-shape statistics decide STDS vs. STPS per query, falling back
	// deterministically to STPS while the query's shape has fewer than
	// MinPredictSamples recorded executions under either algorithm.
	// Results are identical to both forced algorithms.
	Auto
)

// Config tunes storage and algorithm behaviour.
type Config struct {
	// IndexKind selects SRT (default) or IR2 feature indexing.
	IndexKind IndexKind
	// PageSize is the simulated disk page size in bytes (default 4096).
	PageSize int
	// BufferPages is the per-index LRU buffer pool capacity in pages
	// (default 1024).
	BufferPages int
	// PoolStripes splits every buffer pool into this many independently
	// locked LRU shards (rounded down to a power of two) so concurrent
	// queries stop contending on one pool mutex. 0 or 1 keeps the
	// classic single-lock LRU, whose serial eviction order — and thus
	// physical I/O counts — exactly matches the paper's cost model;
	// striping keeps logical/physical accounting exact but makes
	// eviction order depend on the page-to-stripe hash.
	PoolStripes int
	// IOCostPerPage converts physical page reads into modeled I/O time
	// for Stats (default 100µs).
	IOCostPerPage time.Duration
	// RoundRobinPulling switches STPS to the simple round-robin pulling
	// strategy instead of the prioritized strategy of Definition 5.
	RoundRobinPulling bool
	// LazyCombinations forces the bounded-memory lattice enumeration of
	// feature combinations for every variant; by default the range
	// variant uses the paper's eager materialization (which its validity
	// filter keeps small) and the other variants use the lazy lattice.
	LazyCombinations bool
	// DisableBatchSTDS turns off the batched STDS score computation
	// ("Performance improvements", Section 5).
	DisableBatchSTDS bool
	// CacheVoronoiCells keeps the Voronoi cells computed by
	// nearest-neighbor queries across queries — the precomputation for
	// static data the paper suggests in Section 8.5.
	CacheVoronoiCells bool
	// SignatureBits stores hashed keyword signatures of this width in
	// feature indexes instead of exact bitmaps (classic IR²-tree
	// signature files with verification reads against a record file).
	// 0 keeps exact bitmaps. Results are identical either way.
	SignatureBits int
	// Tracing collects a span tree (Stats.Trace) for every query: named
	// phases with wall time and page-read deltas. Off by default; the
	// disabled path costs one nil check per instrumentation point. Can be
	// toggled later with DB.SetTracing.
	Tracing bool
	// TraceSampleRate is the probability (0..1) that a query without an
	// explicit tracing decision collects a full span tree into its event
	// record. 0 disables sampling; queries can always opt in per-request
	// (Query.Trace) or engine-wide (Tracing / SetTracing).
	TraceSampleRate float64
	// SlowQueryThreshold, when positive, makes every query whose CPU time
	// reaches it land in the slow-query log with a complete span tree,
	// regardless of sampling.
	SlowQueryThreshold time.Duration
	// EventLogEntries sizes the in-memory ring of recent query event
	// records (0 = default 1024, negative disables the event log).
	EventLogEntries int
	// SlowLogEntries sizes the slow-query ring (0 = default 128, negative
	// disables the slow log).
	SlowLogEntries int
	// ShardCount > 1 partitions the data spatially into that many
	// self-contained sub-engines and answers queries by parallel
	// scatter-gather with per-shard bound pruning. Results are identical
	// to the single-engine build. 0 or 1 keeps the single engine.
	ShardCount int
	// ShardStrategy selects the partitioner when ShardCount > 1.
	ShardStrategy ShardStrategy
	// ShardParallelism bounds how many shards one query fans out to
	// concurrently (default GOMAXPROCS).
	ShardParallelism int
	// WALDir, when non-empty, attaches a write-ahead log in that
	// directory at Build/Open time, enabling the live write path (Apply,
	// Flush, Checkpoint) with crash recovery: existing log records past
	// the last checkpoint are replayed before the first query. Requires
	// an unsharded, exact-keyword configuration.
	WALDir string
	// WALGroupCommit batches WAL fsyncs: an Apply is acknowledged when
	// its record hits disk, but the sync may be shared with neighbours
	// arriving within this window. 0 syncs every Apply individually.
	WALGroupCommit time.Duration
	// WALSegmentBytes caps WAL segment file size before rotation
	// (default 4 MiB).
	WALSegmentBytes int64
	// WALRetainSegments keeps the newest N sealed WAL segments alive across
	// Checkpoint even when the checkpoint has made their records redundant,
	// so log-shipping followers can still fetch recent history. 0 deletes
	// every checkpointed segment immediately.
	WALRetainSegments int
	// AutoFlushOps bounds the in-memory delta: when this many mutations
	// accumulate, Apply merges them into a new base generation (or, under
	// BackgroundCompaction, seals them into a run). 0 means
	// DefaultAutoFlushOps; negative disables auto-flush (Flush manually).
	AutoFlushOps int
	// MergePolicy selects incremental vs full-rebuild merging (default
	// MergeAuto: incremental with a degradation fallback).
	MergePolicy MergePolicy
	// MergeDriftRatio is the degradation threshold of MergeAuto: a full
	// rebuild replaces the incremental path once the net mutations merged
	// incrementally since the last bulk load exceed this fraction of the
	// live data size. 0 means the default 0.5.
	MergeDriftRatio float64
	// BackgroundCompaction moves merge work off the write path: reaching
	// the auto-flush threshold seals the delta into an immutable run
	// (O(feature sets), not O(delta)) and a compactor goroutine folds
	// runs into the base behind watermarks, swapping generations under a
	// short critical section. Requires an attached WAL.
	BackgroundCompaction bool
	// CompactRuns is the sealed-run-count watermark that wakes the
	// compactor (default 4).
	CompactRuns int
	// MaxRuns is the write-backpressure cap: when sealing would exceed
	// this many runs, Apply merges synchronously instead (counted by
	// stpq_ingest_write_stalls_total). 0 means 4×CompactRuns.
	MaxRuns int
	// CompactChunkOps is the number of index operations between the
	// background compactor's pacing points (default 512).
	CompactChunkOps int
	// CompactPause is how long the compactor backs off at a pacing point
	// while the foreground gate (SetCompactionGate) reports saturation
	// (default 2ms).
	CompactPause time.Duration
}

// Query is a top-k spatio-textual preference query.
type Query struct {
	// K is the number of objects to return.
	K int
	// Radius is the range constraint r (range variant) or the decay
	// length (influence variant), in normalized coordinates.
	Radius float64
	// Lambda balances feature quality (0) against textual similarity (1);
	// the paper's default is 0.5.
	Lambda float64
	// Keywords maps feature set names to the desired keywords W_i.
	// Feature sets absent from the map match nothing (their contribution
	// is 0).
	Keywords map[string][]string
	// Variant selects the score definition (default Range).
	Variant Variant
	// Algorithm selects the processing strategy (default STPS).
	Algorithm Algorithm
	// Similarity selects the textual similarity measure (default
	// JaccardSim).
	Similarity Similarity
	// RequestID is an optional request-scoped identity. It is stamped onto
	// the query's event record and span tree (never onto results), so one
	// request is attributable across the serving, shard and core layers. It
	// does not affect caching or results.
	RequestID string
	// Trace is the query's explicit tracing decision, overriding the
	// engine toggle and the sampler (default TraceDefault).
	Trace TraceMode
	// Mode selects the execution tier: "" or ModeExact runs the exact
	// engine (the default — results pinned by the oracle suites), and
	// ModeApprox runs the approximate fast tier, where MinHash/LSH
	// candidate pruning trades up to 1−Recall of recall for latency.
	Mode string
	// Recall is the approximate tier's recall target in (0,1] — the
	// probability that a minimally relevant feature survives the LSH
	// candidate filter. 0 means the default (approx.DefaultRecall, 0.9).
	// Only valid with Mode == ModeApprox. Higher targets keep more
	// candidates (and, above 0.95, exact verification); lower targets
	// prune harder and answer faster.
	Recall float64
}

// Execution-mode names accepted by Query.Mode.
const (
	// ModeExact is the exact engine (the default; "" means the same).
	ModeExact = "exact"
	// ModeApprox is the approximate fast tier: MinHash/LSH textual
	// candidate pruning under the query's Recall target.
	ModeApprox = "approx"
)

// Result is one ranked data object.
type Result struct {
	ID    int64
	X, Y  float64
	Score float64
}

// Stats reports the cost of one query, following the paper's metric:
// measured CPU time plus I/O time modeled from physical page reads.
type Stats struct {
	CPUTime        time.Duration
	IOTime         time.Duration
	LogicalReads   int64
	PhysicalReads  int64
	VoronoiCPUTime time.Duration
	VoronoiReads   int64
	Combinations   int
	FeaturesPulled int
	ObjectsScored  int
	// ShardFanout and ShardPruned count shards queried / skipped by the
	// scatter-gather of a sharded DB; zero on unsharded DBs.
	ShardFanout int
	ShardPruned int
	// ApproxCandidates, ApproxPruned and ApproxSkippedReads report the
	// approximate tier's work on a Mode: ModeApprox query: leaf features
	// checked against the MinHash sketch, those the LSH band filter
	// rejected, and verification page reads the skip-verify path avoided.
	// Zero in exact mode.
	ApproxCandidates   int64
	ApproxPruned       int64
	ApproxSkippedReads int64
	// Trace is the query's phase breakdown when tracing is enabled
	// (Config.Tracing, DB.SetTracing, Query.Trace, or a sampling hit),
	// nil otherwise.
	Trace *Span
}

// Total returns CPU plus modeled I/O time.
func (s Stats) Total() time.Duration { return s.CPUTime + s.IOTime }

// queryEngine is the query surface shared by the single engine
// (core.Engine) and the sharded engine (shard.Engine). Everything above
// this interface — snapshots, serving, metrics, tracing — works
// identically for both.
type queryEngine interface {
	STDS(core.Query) ([]core.Result, core.Stats, error)
	STPS(core.Query) ([]core.Result, core.Stats, error)
	ExactScore(core.Query, geo.Point) (float64, error)
	UpperBoundAll(core.Query) (float64, error)
	FeatureGroups() []*index.FeatureGroup
	NumObjects() int
	SetTrace(bool)
	PrecomputeVoronoiCells() error
}

// DB is a queryable collection of data objects and named feature sets.
// Populate it with AddObjects/AddFeatureSet, call Build, then query with
// TopK. After Build, a DB is safe for concurrent use and queries run in
// parallel: each query charges its page reads to a private accumulator, so
// Stats keep the paper's exact per-query attribution even under load. Use
// Snapshot for a pinned view, and Rebuild to swap in fresh indexes without
// disturbing in-flight queries.
type DB struct {
	mu       sync.RWMutex
	cfg      Config
	vocab    *kwset.Vocabulary
	objects  []Object
	setNames []string
	sets     map[string][]Feature
	engine   queryEngine
	metrics  *obs.Registry
	tel      *obs.Telemetry
	inverted map[string]*invindex.Index
	built    bool
	gen      uint64 // build generation: 1 after Build, +1 per Rebuild

	// Live ingest state (see ingest.go, compaction.go). ingestMu
	// serializes writers and orders WAL appends; it is acquired before
	// db.mu and never held during queries, so fsyncs do not block readers.
	ingestMu   sync.Mutex
	wal        *ingest.WAL
	delta      *ingest.Delta // nil when no unmerged mutations
	runs       []*ingest.Run // sealed generations awaiting compaction, oldest first
	base       *core.Engine  // the unsharded base engine, nil when sharded
	objLoc     map[int64]geo.Point
	featLoc    []map[int64]geo.Point
	walSeq     uint64 // last WAL seq applied in memory
	appliedSeq uint64 // last WAL seq durable in a checkpoint manifest

	// Incremental-merge bookkeeping (see compaction.go). mergeEpoch
	// invalidates a background compaction whose pinned base was replaced
	// mid-flight; the drift counters feed the degradation fallback.
	mergeEpoch    uint64
	incrOps       int // net ops merged incrementally since the last bulk load
	incrSplits    int // overflow splits absorbed incrementally since the last bulk load
	baseHeights   []int
	lastMergeSecs float64
	lastStallSecs float64

	// Background compactor plumbing; nil unless Config.BackgroundCompaction.
	compactC    chan struct{}
	compactStop chan struct{}
	compactDone chan struct{}
	compactGate func() bool

	ckptMu sync.Mutex // serializes Checkpoint's lock-free disk phase

	ingestApplied  *obs.Counter
	ingestReplayed *obs.Counter
	ingestMerges   *obs.Counter
	partialMerges  *obs.Counter
	fullRebuilds   *obs.Counter
	compactions    *obs.Counter
	compactsLost   *obs.Counter
	writeStalls    *obs.Counter
	mergeSeconds   *obs.Histogram
}

// New creates an empty DB.
func New(cfg Config) *DB {
	return &DB{
		cfg:     cfg,
		vocab:   kwset.NewVocabulary(),
		sets:    make(map[string][]Feature),
		metrics: obs.NewRegistry(),
		tel: obs.NewTelemetry(cfg.EventLogEntries, cfg.SlowLogEntries,
			cfg.TraceSampleRate, cfg.SlowQueryThreshold),
	}
}

// AddObjects appends data objects. Must be called before Build (or, for
// incremental growth, before a Rebuild).
func (db *DB) AddObjects(objs []Object) *DB {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.objects = append(db.objects, objs...)
	return db
}

// AddFeatureSet registers a named feature set (e.g. "restaurants").
// Calling it again with the same name appends to that set. Must be called
// before Build (or, for incremental growth, before a Rebuild).
func (db *DB) AddFeatureSet(name string, feats []Feature) *DB {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.sets[name]; !ok {
		db.setNames = append(db.setNames, name)
	}
	db.sets[name] = append(db.sets[name], feats...)
	return db
}

// FeatureSetNames returns the registered feature set names in insertion
// order — the order Keywords sets are matched against.
func (db *DB) FeatureSetNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.setNames))
	copy(out, db.setNames)
	return out
}

// Build constructs the indexes. It must be called exactly once, after the
// initial data has been added and before the first query; to re-index
// after adding more data, use Rebuild.
func (db *DB) Build() error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.built {
		return errors.New("stpq: Build called twice")
	}
	if err := db.buildLocked(); err != nil {
		return err
	}
	if db.cfg.WALDir != "" {
		if _, err := db.attachWALLocked(db.cfg.WALDir); err != nil {
			db.built = false
			return err
		}
	}
	return nil
}

// buildLocked validates the raw data, constructs the indexes and engine
// against db.vocab, and publishes them. Callers hold db.mu.
func (db *DB) buildLocked() error {
	if len(db.objects) == 0 {
		return errors.New("stpq: no data objects added")
	}
	if len(db.setNames) == 0 {
		return errors.New("stpq: no feature sets added")
	}
	// Pass 1: intern every keyword so the vocabulary width is final.
	for _, name := range db.setNames {
		for _, f := range db.sets[name] {
			for _, w := range f.Keywords {
				db.vocab.Intern(w)
			}
		}
	}
	width := db.vocab.Size()
	if width == 0 {
		return errors.New("stpq: feature sets contain no keywords")
	}
	opts := index.Options{
		Kind:          index.Kind(db.cfg.IndexKind),
		VocabWidth:    width,
		PageSize:      db.cfg.PageSize,
		BufferPages:   db.cfg.BufferPages,
		PoolStripes:   db.cfg.PoolStripes,
		SignatureBits: db.cfg.SignatureBits,
	}
	objs := make([]index.Object, len(db.objects))
	for i, o := range db.objects {
		objs[i] = index.Object{ID: o.ID, Location: geo.Point{X: o.X, Y: o.Y}}
	}
	featSets := make([][]index.Feature, len(db.setNames))
	for i, name := range db.setNames {
		raw := db.sets[name]
		feats := make([]index.Feature, len(raw))
		for j, f := range raw {
			if f.Score < 0 || f.Score > 1 {
				return fmt.Errorf("stpq: feature %d of %q has score %v outside [0,1]", f.ID, name, f.Score)
			}
			feats[j] = index.Feature{
				ID:       f.ID,
				Location: geo.Point{X: f.X, Y: f.Y},
				Score:    f.Score,
				Keywords: db.vocab.SetOf(f.Keywords...),
			}
		}
		featSets[i] = feats
	}
	if db.cfg.ShardCount > 1 {
		eng, err := shard.New(objs, featSets, shard.Options{
			Shards:      db.cfg.ShardCount,
			Strategy:    shard.Strategy(db.cfg.ShardStrategy),
			Parallelism: db.cfg.ShardParallelism,
			Index:       opts,
			Core:        db.cfg.coreOptions(nil, nil),
			Metrics:     db.metrics,
			Telemetry:   db.tel,
		})
		if err != nil {
			return fmt.Errorf("stpq: building sharded engine: %w", err)
		}
		db.engine = eng
		db.base = nil
	} else {
		oidx, err := index.BuildObjectIndex(objs, opts)
		if err != nil {
			return fmt.Errorf("stpq: building object index: %w", err)
		}
		fidxs := make([]*index.FeatureIndex, len(db.setNames))
		for i, name := range db.setNames {
			fidxs[i], err = index.BuildFeatureIndex(featSets[i], opts)
			if err != nil {
				return fmt.Errorf("stpq: building feature index %q: %w", name, err)
			}
		}
		oidx.AttachMetrics(db.metrics, "objects")
		eng, err := core.NewEngine(oidx, fidxs, db.cfg.coreOptions(db.metrics, db.tel))
		if err != nil {
			return err
		}
		db.engine = eng
		db.base = eng
	}
	db.rebuildLocMapsLocked()
	// Feature pool metrics attach to the groups, which both engine kinds
	// expose (sharded groups add a _partNN suffix per cell).
	for i, name := range db.setNames {
		db.engine.FeatureGroups()[i].AttachMetrics(db.metrics, poolLabel(name))
	}
	// A bulk load resets the incremental-merge drift accounting: the trees
	// are freshly packed, and their heights become the degradation
	// baseline for subsequent partial merges.
	db.runs = nil
	db.incrOps = 0
	db.incrSplits = 0
	db.recordBaseShapeLocked()
	db.mergeEpoch++
	db.built = true
	db.gen++
	db.inverted = nil // stale after a rebuild; lazily rebuilt by KeywordStats
	return nil
}

// rebuildLocMapsLocked derives the id→location maps from the raw slices.
// Partial merges need them to delete base items (rtree.Delete requires the
// exact location); they are maintained incrementally at every merge swap
// so the write path never rescans the base. Sharded engines have no write
// path and skip them.
func (db *DB) rebuildLocMapsLocked() {
	if db.base == nil {
		db.objLoc, db.featLoc = nil, nil
		return
	}
	db.objLoc = make(map[int64]geo.Point, len(db.objects))
	for _, o := range db.objects {
		db.objLoc[o.ID] = geo.Point{X: o.X, Y: o.Y}
	}
	db.featLoc = make([]map[int64]geo.Point, len(db.setNames))
	for i, name := range db.setNames {
		m := make(map[int64]geo.Point, len(db.sets[name]))
		for _, f := range db.sets[name] {
			m[f.ID] = geo.Point{X: f.X, Y: f.Y}
		}
		db.featLoc[i] = m
	}
}

// recordBaseShapeLocked captures the base trees' heights as the
// degradation baseline for the incremental-merge quality heuristic.
func (db *DB) recordBaseShapeLocked() {
	if db.base == nil {
		db.baseHeights = nil
		return
	}
	db.baseHeights = make([]int, 1+len(db.setNames))
	db.baseHeights[0] = db.base.Objects().Tree().Height()
	for i := range db.setNames {
		db.baseHeights[1+i] = db.base.FeatureGroups()[i].Part(0).Tree().Height()
	}
}

// coreOptions lowers the public config (plus the DB's metrics registry and
// telemetry bundle) into engine options.
func (cfg Config) coreOptions(metrics *obs.Registry, tel *obs.Telemetry) core.Options {
	opts := core.Options{
		BatchSTDS:         !cfg.DisableBatchSTDS,
		CacheVoronoiCells: cfg.CacheVoronoiCells,
		Trace:             cfg.Tracing,
		Metrics:           metrics,
		Telemetry:         tel,
	}
	if cfg.LazyCombinations {
		opts.Combinations = core.CombinationsLazy
	}
	if cfg.RoundRobinPulling {
		opts.Pull = core.PullRoundRobin
	}
	if cfg.IOCostPerPage > 0 {
		opts.CostModel = storage.CostModel{PerPage: cfg.IOCostPerPage}
	}
	return opts
}

// poolLabel sanitizes a feature-set name into a Prometheus label value.
func poolLabel(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "set"
	}
	return b.String()
}

// TopK runs the query and returns the k best objects with execution
// statistics. Safe for concurrent use after Build; queries run in
// parallel against a snapshot of the current indexes.
func (db *DB) TopK(q Query) ([]Result, Stats, error) {
	snap, err := db.Snapshot()
	if err != nil {
		return nil, Stats{}, err
	}
	return snap.TopK(q)
}

// KeywordStat describes one keyword of a feature set.
type KeywordStat struct {
	Keyword string
	// Count is the number of features of the set described by the
	// keyword.
	Count int
	// TopScore is the best non-spatial score among those features.
	TopScore float64
}

// KeywordStats returns, for the named feature set, the per-keyword
// document frequencies and best scores, ordered by descending frequency.
// It is backed by an inverted index built on first use and helps users
// gauge the selectivity of candidate query keywords.
func (db *DB) KeywordStats(featureSet string) ([]KeywordStat, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.built {
		return nil, fmt.Errorf("%w: KeywordStats before Build", ErrNotBuilt)
	}
	pos := -1
	for i, name := range db.setNames {
		if name == featureSet {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("%w %q", ErrUnknownFeatureSet, featureSet)
	}
	if db.inverted == nil {
		db.inverted = make(map[string]*invindex.Index)
	}
	ix, ok := db.inverted[featureSet]
	if !ok {
		// Build from the index itself so opened DBs (which do not retain
		// the raw feature slices) are covered too.
		entries, err := db.engine.FeatureGroups()[pos].AllExact()
		if err != nil {
			return nil, err
		}
		feats := make([]index.Feature, len(entries))
		for j, e := range entries {
			feats[j] = index.Feature{ID: e.ItemID, Score: e.Score, Keywords: e.Keywords}
		}
		ix = invindex.Build(feats, db.vocab.Size())
		db.inverted[featureSet] = ix
	}
	out := make([]KeywordStat, 0, db.vocab.Size())
	for id := 0; id < db.vocab.Size(); id++ {
		if n := ix.DocFrequency(id); n > 0 {
			out = append(out, KeywordStat{Keyword: db.vocab.Word(id), Count: n, TopScore: ix.TopScore(id)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Keyword < out[j].Keyword
	})
	return out, nil
}

// Selectivity returns the fraction of the named feature set that is
// textually relevant to the given keywords — a direct predictor of query
// cost.
func (db *DB) Selectivity(featureSet string, keywords []string) (float64, error) {
	if _, err := db.KeywordStats(featureSet); err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ix, ok := db.inverted[featureSet]
	if !ok {
		// A concurrent Rebuild invalidated the inverted index between the
		// two critical sections; the caller can simply retry.
		return 0, fmt.Errorf("stpq: feature set %q was rebuilt concurrently", featureSet)
	}
	return ix.Selectivity(db.vocab.LookupSet(keywords...)), nil
}

// Score computes the exact spatio-textual preference score of an arbitrary
// location under the query, by brute force. Intended for debugging and
// verification, not for production use.
func (db *DB) Score(q Query, x, y float64) (float64, error) {
	snap, err := db.Snapshot()
	if err != nil {
		return 0, err
	}
	return snap.Score(q, x, y)
}

// fromCoreStats converts internal stats to the public type.
func fromCoreStats(st core.Stats) Stats {
	return Stats{
		CPUTime:            st.CPUTime,
		IOTime:             st.IOTime,
		LogicalReads:       st.LogicalReads,
		PhysicalReads:      st.PhysicalReads,
		VoronoiCPUTime:     st.VoronoiCPUTime,
		VoronoiReads:       st.VoronoiReads,
		Combinations:       st.Combinations,
		FeaturesPulled:     st.FeaturesPulled,
		ObjectsScored:      st.ObjectsScored,
		ShardFanout:        st.ShardFanout,
		ShardPruned:        st.ShardPruned,
		ApproxCandidates:   st.ApproxCandidates,
		ApproxPruned:       st.ApproxPruned,
		ApproxSkippedReads: st.ApproxSkippedReads,
		Trace:              fromObsSpan(st.Trace),
	}
}
