package stpq

// compaction.go implements the generational merge pipeline that replaced
// the O(N) rebuild-on-flush write path (see DESIGN.md §15). Pending
// mutations live in up to three tiers — the mutable delta, sealed
// immutable runs, and the bulk-loaded base — and mergeLocked folds the
// first two into the third one of two ways:
//
//   - Partial merge (the default): the net mutations are batch-applied
//     into copy-on-write clones of the base trees via rtree.Insert/Delete,
//     so only the touched subtree pages are rewritten and the merge costs
//     O(delta·log N) instead of O(N). Older snapshots keep reading the
//     original pages through the CowDisk base.
//   - Full rebuild: the net mutations are folded into the raw slices and
//     the whole engine is re-bulk-loaded — the pre-generational behaviour,
//     used as the MergeAuto degradation fallback, for vocabulary-growing
//     batches, and as the MergeRebuild baseline.
//
// The background compactor (Config.BackgroundCompaction) runs the same
// partial merge off the write path: it pins the sealed runs under a read
// lock, applies the net ops to clones with no locks held (paced by
// ingest.Pacer so foreground queries keep their latency), and swaps the
// new generation in under a short critical section, abandoning the work
// if a foreground merge replaced the base mid-flight (mergeEpoch).

import (
	"fmt"
	"sort"
	"time"

	"stpq/internal/core"
	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/ingest"
)

// netOps is the net effect of a stack of pending layers: the newest write
// per id wins, upsert-over-delete and delete-over-upsert folds applied.
// Features keep their interned keyword sets — partial merges never grow
// the vocabulary, so no re-interning happens on this path.
type netOps struct {
	deadObj  map[int64]struct{}
	upsObj   map[int64]index.Object
	deadFeat []map[int64]struct{}
	upsFeat  []map[int64]index.Feature
	// count is the number of net index operations the merge will perform,
	// feeding the MergeAuto drift accounting.
	count int
}

// collectNet folds the layers (oldest first) into their net effect.
func collectNet(layers []*ingest.Layer, numSets int) *netOps {
	net := &netOps{
		deadObj:  make(map[int64]struct{}),
		upsObj:   make(map[int64]index.Object),
		deadFeat: make([]map[int64]struct{}, numSets),
		upsFeat:  make([]map[int64]index.Feature, numSets),
	}
	for i := 0; i < numSets; i++ {
		net.deadFeat[i] = make(map[int64]struct{})
		net.upsFeat[i] = make(map[int64]index.Feature)
	}
	for _, l := range layers {
		// Tombstones first: an upsert records both a tombstone (hiding older
		// generations) and the new value, so within one layer the upsert must
		// survive its own tombstone.
		for id := range l.DeadObjects {
			net.deadObj[id] = struct{}{}
			delete(net.upsObj, id)
		}
		for id, o := range l.Objects {
			net.upsObj[id] = o
		}
		for i := range l.Sets {
			for id := range l.Sets[i].Dead {
				net.deadFeat[i][id] = struct{}{}
				delete(net.upsFeat[i], id)
			}
			for id, f := range l.Sets[i].Feats {
				net.upsFeat[i][id] = f
			}
		}
	}
	net.count = len(net.deadObj) + len(net.upsObj)
	for i := 0; i < numSets; i++ {
		net.count += len(net.deadFeat[i]) + len(net.upsFeat[i])
	}
	return net
}

// pendingLayersLocked returns the pending generations oldest first: sealed
// runs, then a view of the active delta. The delta view shares the live
// maps, so it is only valid while db.mu is held and the delta is dropped
// by the same critical section (mergeLocked does both).
func (db *DB) pendingLayersLocked() []*ingest.Layer {
	layers := make([]*ingest.Layer, 0, len(db.runs)+1)
	for _, r := range db.runs {
		r := r
		layers = append(layers, &r.Layer)
	}
	if db.delta != nil && !db.delta.Empty() {
		layers = append(layers, deltaView(db.delta))
	}
	return layers
}

// deltaView wraps the live delta as a layer without copying. Only the
// synchronous merge path uses it; overlay publication snapshots instead.
func deltaView(d *ingest.Delta) *ingest.Layer {
	l := &ingest.Layer{
		Objects:     d.Objects,
		DeadObjects: d.DeadObjects,
		Sets:        make([]ingest.LayerSet, len(d.Sets)),
	}
	for i, s := range d.Sets {
		l.Sets[i] = ingest.LayerSet{Feats: s.Feats, Dead: s.Dead}
	}
	return l
}

// mergeLocked folds every pending generation (plus an optional trailing
// batch that could not go through the delta) into the base and publishes
// the merged engine. forceFull bypasses the incremental path — required
// when the batch grows the vocabulary or the caller (Rebuild) must fold
// newly added raw data in. A failed partial merge falls back to the full
// rebuild: the copy-on-write clones are discarded, so the base is still
// intact. Callers hold ingestMu and db.mu.
func (db *DB) mergeLocked(extra []Mutation, forceFull bool) error {
	start := time.Now()
	net := collectNet(db.pendingLayersLocked(), len(db.setNames))
	full := forceFull || len(extra) > 0 || !db.canPartialMergeLocked(net)
	var err error
	if full {
		err = db.fullMergeLocked(net, extra)
	} else {
		if err = db.partialMergeLocked(net); err != nil {
			full = true
			err = db.fullMergeLocked(net, nil)
		}
	}
	if err != nil {
		return err
	}
	db.observeMergeLocked(time.Since(start), full)
	return nil
}

// observeMergeLocked records one completed foreground merge in the
// metrics and resets the pending-state gauges.
func (db *DB) observeMergeLocked(took time.Duration, full bool) {
	db.lastMergeSecs = took.Seconds()
	if db.mergeSeconds != nil {
		db.mergeSeconds.Observe(db.lastMergeSecs)
	}
	if db.ingestMerges != nil {
		db.ingestMerges.Inc()
	}
	if full {
		if db.fullRebuilds != nil {
			db.fullRebuilds.Inc()
		}
	} else if db.partialMerges != nil {
		db.partialMerges.Inc()
	}
	db.metrics.Gauge("stpq_ingest_delta_objects").Set(0)
	db.metrics.Gauge("stpq_ingest_delta_ops").Set(0)
	db.metrics.Gauge("stpq_ingest_runs").Set(0)
}

// fullMergeLocked folds the net mutations (and the trailing batch) into
// the raw slices and re-bulk-loads the whole engine.
func (db *DB) fullMergeLocked(net *netOps, extra []Mutation) error {
	db.foldNetIntoRawLocked(net)
	db.foldExtraIntoRawLocked(extra)
	// Intern into a clone so snapshots of the previous generation keep a
	// stable vocabulary (same contract as Rebuild).
	db.vocab = db.vocab.Clone()
	db.delta = nil
	db.runs = nil
	return db.buildLocked()
}

// foldNetIntoRawLocked applies the net mutations to the raw object and
// feature slices, decoding interned keyword sets back to strings. Both
// merge paths call it so the raw data always mirrors the base indexes —
// a later Rebuild or full merge starts from the merged state.
func (db *DB) foldNetIntoRawLocked(net *netOps) {
	upsObj := make(map[int64]Object, len(net.upsObj))
	for id, o := range net.upsObj {
		upsObj[id] = Object{ID: id, X: o.Location.X, Y: o.Location.Y}
	}
	db.objects = foldSlice(db.objects, net.deadObj, upsObj, func(o Object) int64 { return o.ID })
	for i, name := range db.setNames {
		ups := make(map[int64]Feature, len(net.upsFeat[i]))
		for id, f := range net.upsFeat[i] {
			ups[id] = Feature{
				ID: id, X: f.Location.X, Y: f.Location.Y,
				Score:    f.Score,
				Keywords: db.vocab.Decode(f.Keywords),
			}
		}
		db.sets[name] = foldSlice(db.sets[name], net.deadFeat[i], ups, func(f Feature) int64 { return f.ID })
	}
}

// foldExtraIntoRawLocked applies a trailing mutation batch that never
// entered the delta (vocabulary-growing batches) on top of the net fold.
func (db *DB) foldExtraIntoRawLocked(extra []Mutation) {
	if len(extra) == 0 {
		return
	}
	deadObj := make(map[int64]struct{})
	upsObj := make(map[int64]Object)
	deadFeat := make([]map[int64]struct{}, len(db.setNames))
	upsFeat := make([]map[int64]Feature, len(db.setNames))
	for i := range db.setNames {
		deadFeat[i] = make(map[int64]struct{})
		upsFeat[i] = make(map[int64]Feature)
	}
	for _, m := range extra {
		switch m.Op {
		case OpUpsertObject:
			deadObj[m.Object.ID] = struct{}{}
			upsObj[m.Object.ID] = *m.Object
		case OpDeleteObject:
			deadObj[m.ID] = struct{}{}
			delete(upsObj, m.ID)
		case OpUpsertFeature:
			i := db.setPosLocked(m.Set)
			deadFeat[i][m.Feature.ID] = struct{}{}
			upsFeat[i][m.Feature.ID] = *m.Feature
		case OpDeleteFeature:
			i := db.setPosLocked(m.Set)
			deadFeat[i][m.ID] = struct{}{}
			delete(upsFeat[i], m.ID)
		}
	}
	db.objects = foldSlice(db.objects, deadObj, upsObj, func(o Object) int64 { return o.ID })
	for i, name := range db.setNames {
		db.sets[name] = foldSlice(db.sets[name], deadFeat[i], upsFeat[i], func(f Feature) int64 { return f.ID })
	}
}

// canPartialMergeLocked decides whether the pending net mutations may be
// merged incrementally. MergeRebuild never does; MergeIncremental always
// does (when structurally possible); MergeAuto additionally requires the
// tree-quality heuristic to pass: bounded cumulative drift, heights within
// one level of the bulk-loaded baseline, and a bounded overflow-split
// count. Signature-mode indexes and sharded engines always rebuild.
func (db *DB) canPartialMergeLocked(net *netOps) bool {
	if db.base == nil || db.objLoc == nil || net == nil {
		return false
	}
	if db.cfg.MergePolicy == MergeRebuild {
		return false
	}
	for i := range db.setNames {
		g := db.base.FeatureGroups()[i]
		if len(g.Parts()) != 1 || !g.Part(0).CanMerge() {
			return false
		}
	}
	if db.cfg.MergePolicy == MergeIncremental {
		return true
	}
	live := len(db.objLoc)
	for _, m := range db.featLoc {
		live += len(m)
	}
	ratio := db.cfg.MergeDriftRatio
	if ratio <= 0 {
		ratio = 0.5
	}
	if float64(db.incrOps+net.count) > ratio*float64(live+net.count) {
		return false
	}
	if db.treesDegradedLocked() {
		return false
	}
	splitCap := live / 8
	if splitCap < 64 {
		splitCap = 64
	}
	return db.incrSplits <= splitCap
}

// treesDegradedLocked reports whether any live tree has grown more than
// one level past its bulk-loaded baseline — the signal that incremental
// insertion has noticeably loosened the packing. An unknown baseline
// counts as degraded (the rebuild re-establishes it).
func (db *DB) treesDegradedLocked() bool {
	if len(db.baseHeights) != 1+len(db.setNames) {
		return true
	}
	if db.base.Objects().Tree().Height() > db.baseHeights[0]+1 {
		return true
	}
	for i := range db.setNames {
		if db.base.FeatureGroups()[i].Part(0).Tree().Height() > db.baseHeights[1+i]+1 {
			return true
		}
	}
	return false
}

// beginMerge clones the base engine's indexes for an incremental merge:
// each clone reads the shared base pages through a copy-on-write disk and
// writes only its private overlay.
func beginMerge(base *core.Engine, numSets int) (*index.ObjectIndex, []*index.FeatureIndex, error) {
	oidx, err := base.Objects().BeginMerge()
	if err != nil {
		return nil, nil, err
	}
	fidxs := make([]*index.FeatureIndex, numSets)
	for i := range fidxs {
		fidxs[i], err = base.FeatureGroups()[i].Part(0).BeginMerge()
		if err != nil {
			return nil, nil, err
		}
	}
	return oidx, fidxs, nil
}

// partialMergeLocked merges the net mutations into copy-on-write clones
// of the base trees and swaps the merged engine in. On error the clones
// are simply dropped; the base is untouched.
func (db *DB) partialMergeLocked(net *netOps) error {
	oidx, fidxs, err := beginMerge(db.base, len(db.setNames))
	if err != nil {
		return err
	}
	if err := applyNetOps(oidx, fidxs, net, db.objLoc, db.featLoc, nil); err != nil {
		return err
	}
	return db.swapMergedLocked(oidx, fidxs, net, -1)
}

// applyNetOps batch-applies the net mutations to merge clones: deletes
// first (freeing space in the touched leaves), then inserts, both in
// ascending id order for determinism. Deletes need the base location of
// each id (rtree.Delete is location-keyed); ids absent from the location
// maps were never in the base and have nothing to delete. Every feature
// insert runs the Section 4.2 decode→OR→encode node-update rule along its
// insertion path. The pacer, when non-nil, throttles background work.
func applyNetOps(oidx *index.ObjectIndex, fidxs []*index.FeatureIndex, net *netOps,
	objLoc map[int64]geo.Point, featLoc []map[int64]geo.Point, p *ingest.Pacer) error {
	for _, id := range sortedIDs(net.deadObj) {
		loc, ok := objLoc[id]
		if !ok {
			continue
		}
		if _, err := oidx.Delete(id, loc); err != nil {
			return fmt.Errorf("stpq: merge delete object %d: %w", id, err)
		}
		p.Tick()
	}
	for _, id := range sortedIDs(net.upsObj) {
		if err := oidx.Insert(net.upsObj[id]); err != nil {
			return fmt.Errorf("stpq: merge insert object %d: %w", id, err)
		}
		p.Tick()
	}
	for i, fx := range fidxs {
		for _, id := range sortedIDs(net.deadFeat[i]) {
			loc, ok := featLoc[i][id]
			if !ok {
				continue
			}
			if _, err := fx.Delete(id, loc); err != nil {
				return fmt.Errorf("stpq: merge delete feature %d of set %d: %w", id, i, err)
			}
			p.Tick()
		}
		for _, id := range sortedIDs(net.upsFeat[i]) {
			if err := fx.Insert(net.upsFeat[i][id]); err != nil {
				return fmt.Errorf("stpq: merge insert feature %d of set %d: %w", id, i, err)
			}
			p.Tick()
		}
	}
	return nil
}

// sortedIDs returns a map's keys in ascending order.
func sortedIDs[V any](m map[int64]V) []int64 {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// swapMergedLocked publishes merged clone indexes as the new base
// generation: it assembles the engine, folds the net mutations into the
// raw slices and location maps, advances the drift accounting and bumps
// the merge epoch. compactedRuns < 0 means a foreground merge that
// consumed every pending generation; otherwise only the first
// compactedRuns sealed runs were folded (background compaction) and the
// remainder — plus the active delta — is re-published as an overlay over
// the new base. Callers hold ingestMu and db.mu.
func (db *DB) swapMergedLocked(oidx *index.ObjectIndex, fidxs []*index.FeatureIndex, net *netOps, compactedRuns int) error {
	eng, err := core.NewEngine(oidx, fidxs, db.cfg.coreOptions(db.metrics, db.tel))
	if err != nil {
		return err
	}
	oidx.AttachMetrics(db.metrics, "objects")
	for i, name := range db.setNames {
		eng.FeatureGroups()[i].AttachMetrics(db.metrics, poolLabel(name))
	}
	db.foldNetIntoRawLocked(net)
	for id := range net.deadObj {
		delete(db.objLoc, id)
	}
	for id, o := range net.upsObj {
		db.objLoc[id] = o.Location
	}
	for i := range db.setNames {
		for id := range net.deadFeat[i] {
			delete(db.featLoc[i], id)
		}
		for id, f := range net.upsFeat[i] {
			db.featLoc[i][id] = f.Location
		}
	}
	db.base = eng
	db.incrOps += net.count
	db.incrSplits += oidx.Tree().Splits()
	for _, fx := range fidxs {
		db.incrSplits += fx.Tree().Splits()
	}
	db.mergeEpoch++
	if compactedRuns < 0 {
		db.runs = nil
		db.delta = nil
		db.engine = eng
		db.gen++
		db.inverted = nil
		return nil
	}
	db.runs = append([]*ingest.Run(nil), db.runs[compactedRuns:]...)
	db.metrics.Gauge("stpq_ingest_runs").Set(float64(len(db.runs)))
	if db.pendingLocked() {
		return db.publishOverlayLocked()
	}
	db.engine = eng
	db.gen++
	db.inverted = nil
	return nil
}

// compactorLoop is the background compactor goroutine: it sleeps until
// nudged (a sealed run crossed the watermark) and drains compactions until
// the backlog is below the watermark again. The channels are passed in
// rather than read from the DB so CloseWAL can nil the fields without a
// race.
func (db *DB) compactorLoop(wake, stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-wake:
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			more, err := db.compactOnce()
			if err != nil || !more {
				break
			}
		}
	}
}

// compactOnce performs one background compaction in three phases:
//
//  1. Pin (read lock): capture the sealed runs, their net effect, the base
//     engine, the merge epoch and private copies of the locations of every
//     id to delete.
//  2. Apply (no locks): clone the base indexes copy-on-write and batch-
//     apply the net mutations, paced so saturated foreground traffic keeps
//     its latency.
//  3. Swap (write locks): if no foreground merge replaced the base in the
//     meantime (mergeEpoch), publish the merged generation and drop the
//     compacted runs; otherwise abandon the clones — the foreground merge
//     already folded these runs.
//
// Returns whether the backlog still warrants another round.
func (db *DB) compactOnce() (bool, error) {
	db.mu.RLock()
	if db.base == nil || len(db.runs) < db.compactRunsWatermark() {
		db.mu.RUnlock()
		return false, nil
	}
	epoch := db.mergeEpoch
	base := db.base
	nruns := len(db.runs)
	layers := make([]*ingest.Layer, nruns)
	for i, r := range db.runs[:nruns] {
		layers[i] = &r.Layer
	}
	net := collectNet(layers, len(db.setNames))
	partialOK := db.canPartialMergeLocked(net)
	objLoc := pinLocs(db.objLoc, net.deadObj)
	featLoc := make([]map[int64]geo.Point, len(db.featLoc))
	for i := range db.featLoc {
		featLoc[i] = pinLocs(db.featLoc[i], net.deadFeat[i])
	}
	gate := db.compactGate
	chunk, pause := db.cfg.CompactChunkOps, db.cfg.CompactPause
	db.mu.RUnlock()

	if !partialOK {
		// Degraded trees (or the MergeRebuild policy): fall back to a
		// synchronous full merge under the write locks. Expensive, but it
		// resets the drift accounting and re-packs every tree.
		db.ingestMu.Lock()
		db.mu.Lock()
		var err error
		if db.pendingLocked() {
			err = db.mergeLocked(nil, true)
		}
		db.mu.Unlock()
		db.ingestMu.Unlock()
		return false, err
	}

	start := time.Now()
	oidx, fidxs, err := beginMerge(base, len(featLoc))
	if err != nil {
		return false, err
	}
	pacer := &ingest.Pacer{ChunkOps: chunk, Pause: pause, Gate: gate}
	if err := applyNetOps(oidx, fidxs, net, objLoc, featLoc, pacer); err != nil {
		return false, err
	}

	swapStart := time.Now()
	db.ingestMu.Lock()
	db.mu.Lock()
	defer db.ingestMu.Unlock()
	defer db.mu.Unlock()
	if db.mergeEpoch != epoch {
		// A foreground merge (Flush, Checkpoint, backpressure or vocabulary
		// growth) consumed these runs already; the clones are garbage.
		if db.compactsLost != nil {
			db.compactsLost.Inc()
		}
		return true, nil
	}
	if err := db.swapMergedLocked(oidx, fidxs, net, nruns); err != nil {
		return false, err
	}
	db.lastMergeSecs = time.Since(start).Seconds()
	db.lastStallSecs = time.Since(swapStart).Seconds()
	if db.mergeSeconds != nil {
		db.mergeSeconds.Observe(db.lastMergeSecs)
	}
	if db.compactions != nil {
		db.compactions.Inc()
	}
	if db.partialMerges != nil {
		db.partialMerges.Inc()
	}
	db.metrics.Gauge("stpq_ingest_write_stall_seconds").Set(db.lastStallSecs)
	return len(db.runs) >= db.compactRunsWatermark(), nil
}

// pinLocs copies the locations of the given ids out of a live location
// map, so the compactor can use them after the read lock is released.
func pinLocs(src map[int64]geo.Point, ids map[int64]struct{}) map[int64]geo.Point {
	out := make(map[int64]geo.Point, len(ids))
	for id := range ids {
		if loc, ok := src[id]; ok {
			out[id] = loc
		}
	}
	return out
}

// SetCompactionGate installs a foreground-saturation probe for the
// background compactor: while it returns true, the compactor backs off at
// every pacing point (Config.CompactChunkOps / CompactPause). The serving
// layer wires its admission-queue depth here so compactions yield to
// queued queries. Pass nil to remove the gate.
func (db *DB) SetCompactionGate(gate func() bool) {
	db.mu.Lock()
	db.compactGate = gate
	db.mu.Unlock()
}

// IngestStatus is a point-in-time summary of the live write path, exposed
// by the serving layer's /info endpoint.
type IngestStatus struct {
	// WALAttached reports whether the DB has a write-ahead log (Apply works).
	WALAttached bool `json:"walAttached"`
	// WALSeq is the last applied WAL sequence number.
	WALSeq uint64 `json:"walSeq"`
	// PendingOps counts unmerged mutations (active delta plus sealed runs).
	PendingOps int `json:"pendingOps"`
	// Runs counts sealed runs awaiting compaction.
	Runs int `json:"runs"`
	// BackgroundCompaction reports whether the compactor goroutine is live.
	BackgroundCompaction bool `json:"backgroundCompaction"`
	// PartialMerges and FullRebuilds split stpq_ingest_merges_total by path.
	PartialMerges int64 `json:"partialMerges"`
	FullRebuilds  int64 `json:"fullRebuilds"`
	// Compactions counts completed background compactions; WriteStalls
	// counts Applies that had to merge synchronously under backpressure.
	Compactions int64 `json:"compactions"`
	WriteStalls int64 `json:"writeStalls"`
	// LastMergeSeconds is the duration of the most recent merge;
	// LastStallSeconds is the write-path stall it imposed (the full merge
	// duration for foreground merges, just the swap for background ones).
	LastMergeSeconds float64 `json:"lastMergeSeconds"`
	LastStallSeconds float64 `json:"lastStallSeconds"`
}

// IngestStatus returns the current write-path summary.
func (db *DB) IngestStatus() IngestStatus {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := IngestStatus{
		WALAttached:          db.wal != nil,
		WALSeq:               db.walSeq,
		Runs:                 len(db.runs),
		BackgroundCompaction: db.compactDone != nil,
		LastMergeSeconds:     db.lastMergeSecs,
		LastStallSeconds:     db.lastStallSecs,
	}
	for _, r := range db.runs {
		st.PendingOps += r.Ops
	}
	if db.delta != nil {
		st.PendingOps += db.delta.Ops()
	}
	if db.partialMerges != nil {
		st.PartialMerges = db.partialMerges.Value()
	}
	if db.fullRebuilds != nil {
		st.FullRebuilds = db.fullRebuilds.Value()
	}
	if db.compactions != nil {
		st.Compactions = db.compactions.Value()
	}
	if db.writeStalls != nil {
		st.WriteStalls = db.writeStalls.Value()
	}
	return st
}
